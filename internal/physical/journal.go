package physical

// The durable new-version cache journal.
//
// The new-version cache drives pull-based update propagation (§3.2); losing
// it on a crash is survivable — reconciliation is the lossless backstop —
// but needlessly slow: every pending pull the host owed would wait for the
// next full reconcile sweep.  The journal makes the cache durable: a small
// append-only region at the store root (beside the meta file, invisible to
// the Ficus Check walk which starts at the root container) records every
// note and drop, and is replayed when the volume replica is re-opened after
// a crash.
//
// Format: a 5-byte header (magic "NVCJ" + version) followed by records:
//
//	upsert: op=1, file fid(12), origin u32, seen u32, attempts u32,
//	        notBefore u64, dir-path count uvarint, dir fids (12 each)
//	drop:   op=2, file fid(12)
//
// Records are appended under the layer lock, in one WriteAt each, so a
// crash can tear at most the final record; replay stops at the first short
// or invalid record, discarding the torn tail.  Appends are best-effort:
// a failed journal write is counted (JournalErrors) but never fails the
// note/drop itself — durability here is an optimization, not a correctness
// requirement.  The journal is compacted (rewritten as a snapshot of the
// live cache, via shadow + rename) when the record count outgrows the
// cache, and normalized the same way on every open.

import (
	"encoding/binary"

	"repro/internal/ids"
	"repro/internal/vnode"
)

const (
	nvcjFileName = "nvcj"
	nvcjVersion  = 1

	nvcjOpUpsert = 1
	nvcjOpDrop   = 2
)

var nvcjMagic = []byte("NVCJ")

// appendJournalFID mirrors the repl wire codec's fid layout.
func appendJournalFID(dst []byte, f ids.FileID) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Issuer))
	return binary.BigEndian.AppendUint64(dst, f.Seq)
}

func encodeUpsert(dst []byte, nv NewVersion) []byte {
	dst = append(dst, nvcjOpUpsert)
	dst = appendJournalFID(dst, nv.File)
	dst = binary.BigEndian.AppendUint32(dst, uint32(nv.Origin))
	dst = binary.BigEndian.AppendUint32(dst, uint32(nv.Seen))
	dst = binary.BigEndian.AppendUint32(dst, uint32(nv.Attempts))
	dst = binary.BigEndian.AppendUint64(dst, nv.NotBefore)
	dst = binary.AppendUvarint(dst, uint64(len(nv.Dir)))
	for _, f := range nv.Dir {
		dst = appendJournalFID(dst, f)
	}
	return dst
}

func encodeDrop(dst []byte, file ids.FileID) []byte {
	dst = append(dst, nvcjOpDrop)
	return appendJournalFID(dst, file)
}

// jdec is a bounds-checked journal reader; short reads set eof instead of
// erroring because a torn tail is expected after a crash.
type jdec struct {
	b   []byte
	eof bool
}

func (d *jdec) take(n int) []byte {
	if d.eof || len(d.b) < n {
		d.eof = true
		return nil
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b
}

func (d *jdec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *jdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *jdec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *jdec) fid() ids.FileID {
	return ids.FileID{Issuer: ids.ReplicaID(d.u32()), Seq: d.u64()}
}

func (d *jdec) count() uint64 {
	if d.eof {
		return 0
	}
	n, used := binary.Uvarint(d.b)
	if used <= 0 {
		d.eof = true
		return 0
	}
	d.b = d.b[used:]
	return n
}

// replayJournal applies journal records to the (fresh) in-memory cache,
// stopping at the first short or invalid record.  Records naming an origin
// the cache may not hold (zero, or this replica itself) are skipped: they
// can only come from corruption, and replaying them would trip the
// NoteNewVersion invariant the daemons rely on.
func (l *Layer) replayJournal(data []byte) {
	if len(data) < len(nvcjMagic)+1 {
		return
	}
	for i, c := range nvcjMagic {
		if data[i] != c {
			return
		}
	}
	if data[len(nvcjMagic)] != nvcjVersion {
		return
	}
	d := &jdec{b: data[len(nvcjMagic)+1:]}
	for !d.eof && len(d.b) > 0 {
		switch d.u8() {
		case nvcjOpUpsert:
			nv := NewVersion{File: d.fid()}
			nv.Origin = ids.ReplicaID(d.u32())
			nv.Seen = int(d.u32())
			nv.Attempts = int(d.u32())
			nv.NotBefore = d.u64()
			n := d.count()
			// Cap against remaining bytes before allocating.
			if d.eof || n > uint64(len(d.b)/12) {
				return
			}
			nv.Dir = make([]ids.FileID, n)
			for i := range nv.Dir {
				nv.Dir[i] = d.fid()
			}
			if d.eof {
				return
			}
			if nv.Origin == 0 || nv.Origin == l.replica {
				continue
			}
			l.nvc[nvcKey{file: nv.File}] = nv
		case nvcjOpDrop:
			f := d.fid()
			if d.eof {
				return
			}
			delete(l.nvc, nvcKey{file: f})
		default:
			return
		}
	}
}

// snapshotJournalLocked renders the full journal image for the current
// cache contents.
func (l *Layer) snapshotJournalLocked() []byte {
	data := append([]byte(nil), nvcjMagic...)
	data = append(data, nvcjVersion)
	for _, nv := range l.pendingVersionsLocked() {
		data = encodeUpsert(data, nv)
	}
	return data
}

// rewriteJournalLocked replaces the journal with a snapshot of the live
// cache via the store's usual shadow + atomic-rename commit.
func (l *Layer) rewriteJournalLocked() error {
	shadowName := nvcjFileName + suffixShadow
	sf, err := l.root.Create(shadowName, false)
	if err != nil {
		return err
	}
	data := l.snapshotJournalLocked()
	if err := vnode.WriteFile(sf, data); err != nil {
		return err
	}
	if err := l.root.Rename(shadowName, l.root, nvcjFileName); err != nil {
		return err
	}
	// The shadow's vnode is now the journal.
	l.nvcj = sf
	l.nvcjSize = uint64(len(data))
	l.nvcjRecs = len(l.nvc)
	return nil
}

// initJournalLocked creates a fresh empty journal (volume format time).
func (l *Layer) initJournalLocked() error {
	return l.rewriteJournalLocked()
}

// openJournalLocked recovers and replays the journal while (re)opening a
// volume replica: discard a leftover compaction shadow, replay the log into
// the in-memory cache, then rewrite the normalized snapshot.  A missing
// journal (store formatted before journaling existed) starts empty.
func (l *Layer) openJournalLocked() error {
	// A crash mid-compaction can leave nvcj.shadow behind; the root
	// container recovery walk never visits the store root, so sort it out
	// here.  Which copy to trust depends on whether the rename commit had
	// removed the old journal name yet:
	//
	//   - nvcj still present: the rename never committed; the old log is
	//     intact and the shadow is possibly torn — discard the shadow.
	//   - nvcj gone: the crash landed inside the rename itself.  The
	//     rename only begins after the shadow is fully written, so the
	//     shadow IS the complete new snapshot — promote it.
	shadowName := nvcjFileName + suffixShadow
	if _, err := l.root.Lookup(shadowName); err == nil {
		if _, jerr := l.root.Lookup(nvcjFileName); vnode.AsErrno(jerr) == vnode.ENOENT {
			if err := l.root.Rename(shadowName, l.root, nvcjFileName); err != nil {
				return err
			}
		} else if jerr != nil {
			return jerr
		} else if err := l.root.Remove(shadowName); err != nil {
			return err
		}
	} else if vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	if f, err := l.root.Lookup(nvcjFileName); err == nil {
		data, err := vnode.ReadFile(f)
		if err != nil {
			return err
		}
		l.replayJournal(data)
	} else if vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	return l.rewriteJournalLocked()
}

// journalAppendLocked appends one record, best-effort: a failed append is
// counted but does not fail the caller (reconciliation remains the lossless
// backstop for a cache entry the journal missed).
func (l *Layer) journalAppendLocked(rec []byte) {
	if l.nvcj == nil {
		return
	}
	if _, err := l.nvcj.WriteAt(rec, int64(l.nvcjSize)); err != nil {
		l.journalErrs++
		return
	}
	l.nvcjSize += uint64(len(rec))
	l.nvcjRecs++
	// Compact once drops and re-notes dominate the live entries, so the
	// journal stays proportional to the cache instead of the workload.
	if l.nvcjRecs > 64 && l.nvcjRecs > 4*len(l.nvc)+16 {
		if err := l.rewriteJournalLocked(); err != nil {
			l.journalErrs++
		}
	}
}

// JournalErrors reports how many best-effort NVC journal writes have failed
// (each such miss is recovered by the next reconciliation pass).
func (l *Layer) JournalErrors() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.journalErrs
}
