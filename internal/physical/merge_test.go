package physical

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

func newMergePair(t *testing.T) (*Layer, *Layer) {
	t.Helper()
	mk := func(r ids.ReplicaID) *Layer {
		fs, err := ufs.Mkfs(disk.New(8192), 2048, nil)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Format(ufsvn.New(fs), testVol, r)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	return mk(1), mk(2)
}

// mergeBoth applies each replica's root directory state to the other.
func mergeBoth(t *testing.T, a, b *Layer) (MergeResult, MergeResult) {
	t.Helper()
	da, err := a.DirEntries(RootPath())
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.DirEntries(RootPath())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ApplyDirMerge(RootPath(), da)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.ApplyDirMerge(RootPath(), db)
	if err != nil {
		t.Fatal(err)
	}
	return ra, rb
}

func entrySummary(t *testing.T, l *Layer) string {
	t.Helper()
	ds, err := l.DirEntries(RootPath())
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(ds.Entries))
	for _, e := range ds.Entries {
		lines = append(lines, fmt.Sprintf("%v|%s|%v|%v|%v", e.EID, e.Name, e.Child, e.Kind, e.Deleted))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestMergeAdoptsRemoteInsertions(t *testing.T) {
	a, b := newMergePair(t)
	ra, _ := a.Root()
	if _, err := ra.Create("only-on-a", true); err != nil {
		t.Fatal(err)
	}
	da, _ := a.DirEntries(RootPath())
	res, err := b.ApplyDirMerge(RootPath(), da)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 0 {
		t.Fatalf("result %+v", res)
	}
	// The entry is now visible on b, but its data is not stored there.
	rb, _ := b.Root()
	if _, err := rb.Lookup("only-on-a"); vnode.AsErrno(err) != vnode.ENOSTOR {
		t.Fatalf("lookup on b: %v, want ENOSTOR", err)
	}
	// Merge is idempotent.
	res, err = b.ApplyDirMerge(RootPath(), da)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed() {
		t.Fatalf("second merge changed state: %+v", res)
	}
}

func TestMergePropagatesDeletes(t *testing.T) {
	a, b := newMergePair(t)
	ra, _ := a.Root()
	if _, err := ra.Create("f", true); err != nil {
		t.Fatal(err)
	}
	mergeBoth(t, a, b)
	// b now knows the entry; store data there too via install.
	db, _ := b.DirEntries(RootPath())
	var child ids.FileID
	for _, e := range db.Entries {
		if e.Live() {
			child = e.Child
		}
	}
	if err := b.InstallFileVersion(RootPath(), child, KFile, []byte("x"), db.VV, 1); err != nil {
		t.Fatal(err)
	}
	// Delete on a, merge to b: the tombstone must win and reclaim storage.
	if err := ra.Remove("f"); err != nil {
		t.Fatal(err)
	}
	da, _ := a.DirEntries(RootPath())
	res, err := b.ApplyDirMerge(RootPath(), da)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("result %+v", res)
	}
	rb, _ := b.Root()
	if _, err := rb.Lookup("f"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("f still visible on b: %v", err)
	}
	if _, err := b.FileInfo(RootPath(), child); err == nil {
		t.Fatal("storage not reclaimed on b")
	}
}

func TestMergeNameConflictAutoRepair(t *testing.T) {
	a, b := newMergePair(t)
	ra, _ := a.Root()
	rb, _ := b.Root()
	// Partitioned: both create "report" independently (§1: conflicting
	// updates to directories are detected and automatically repaired).
	fa, err := ra.Create("report", true)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := rb.Create("report", true)
	if err != nil {
		t.Fatal(err)
	}
	vnode.WriteFile(fa, []byte("a's report"))
	vnode.WriteFile(fb, []byte("b's report"))
	mergeBoth(t, a, b)
	// Both replicas list two entries with deterministic disambiguation.
	for _, l := range []*Layer{a, b} {
		root, _ := l.Root()
		ents, err := root.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 2 {
			t.Fatalf("replica %d lists %v", l.Replica(), ents)
		}
		names := []string{ents[0].Name, ents[1].Name}
		sort.Strings(names)
		if names[0] != "report" || !strings.HasPrefix(names[1], "report#") {
			t.Fatalf("replica %d names %v", l.Replica(), names)
		}
	}
	// Identical rendering on both replicas.
	if entrySummary(t, a) != entrySummary(t, b) {
		t.Fatalf("replicas diverged:\nA:\n%s\nB:\n%s", entrySummary(t, a), entrySummary(t, b))
	}
	da, _ := a.DirEntries(RootPath())
	if countNameConflicts(da.Entries) != 1 {
		t.Fatalf("conflict count %d", countNameConflicts(da.Entries))
	}
}

// TestMergeConvergenceProperty drives two partitioned replicas with random
// independent operations, then reconciles pairwise in both directions and
// checks they converge to identical directory state.  A third merge round
// must be a no-op (quiescence).
func TestMergeConvergenceProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		a, b := newMergePair(t)
		rng := rand.New(rand.NewSource(seed))
		ops := func(l *Layer, tag string) {
			root, _ := l.Root()
			names := []string{}
			for i := 0; i < 25; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					name := fmt.Sprintf("%s-%d", tag, rng.Intn(10))
					if _, err := root.Create(name, true); err == nil {
						names = append(names, name)
					}
				case 2:
					name := fmt.Sprintf("shared-%d", rng.Intn(5))
					root.Create(name, true)
				case 3:
					if len(names) > 0 {
						root.Remove(names[rng.Intn(len(names))])
					}
				}
			}
		}
		ops(a, "a")
		ops(b, "b")
		mergeBoth(t, a, b)
		if sa, sb := entrySummary(t, a), entrySummary(t, b); sa != sb {
			t.Fatalf("seed %d: diverged after merge:\nA:\n%s\nB:\n%s", seed, sa, sb)
		}
		ra, rb := mergeBoth(t, a, b)
		if ra.Changed() || rb.Changed() {
			t.Fatalf("seed %d: merge not quiescent: %+v %+v", seed, ra, rb)
		}
		// Version vectors converge as well.
		da, _ := a.DirEntries(RootPath())
		db, _ := b.DirEntries(RootPath())
		if !da.VV.Equal(db.VV) {
			t.Fatalf("seed %d: vv diverged: %v vs %v", seed, da.VV, db.VV)
		}
	}
}

// TestThreeWayConvergence checks that pairwise reconciliation propagates
// transitively: a<->b then b<->c then c<->a leaves all three identical.
func TestThreeWayConvergence(t *testing.T) {
	mk := func(r ids.ReplicaID) *Layer {
		fs, _ := ufs.Mkfs(disk.New(8192), 2048, nil)
		l, err := Format(ufsvn.New(fs), testVol, r)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b, c := mk(1), mk(2), mk(3)
	for i, l := range []*Layer{a, b, c} {
		root, _ := l.Root()
		if _, err := root.Create(fmt.Sprintf("from-%d", i+1), true); err != nil {
			t.Fatal(err)
		}
	}
	pair := func(x, y *Layer) {
		dx, _ := x.DirEntries(RootPath())
		dy, _ := y.DirEntries(RootPath())
		if _, err := y.ApplyDirMerge(RootPath(), dx); err != nil {
			t.Fatal(err)
		}
		if _, err := x.ApplyDirMerge(RootPath(), dy); err != nil {
			t.Fatal(err)
		}
	}
	pair(a, b)
	pair(b, c)
	pair(c, a)
	pair(a, b) // second round closes the gossip loop
	sa, sb, sc := entrySummary(t, a), entrySummary(t, b), entrySummary(t, c)
	if sa != sb || sb != sc {
		t.Fatalf("three-way divergence:\nA:\n%s\nB:\n%s\nC:\n%s", sa, sb, sc)
	}
	roots := 0
	ra, _ := a.Root()
	ents, _ := ra.Readdir()
	for range ents {
		roots++
	}
	if roots != 3 {
		t.Fatalf("expected 3 files everywhere, got %d", roots)
	}
}

func TestAppendEntryForGraftTables(t *testing.T) {
	a, _ := newMergePair(t)
	e := Entry{Name: "r00000001", Child: ids.FileID{Issuer: 1, Seq: 99}, Kind: KFile, Value: "host-a"}
	if err := a.AppendEntry(RootPath(), e); err != nil {
		t.Fatal(err)
	}
	ds, _ := a.DirEntries(RootPath())
	if len(ds.Entries) != 1 || ds.Entries[0].Value != "host-a" {
		t.Fatalf("%+v", ds.Entries)
	}
	if ds.Entries[0].EID.IsNil() {
		t.Fatal("EID not auto-assigned")
	}
}
