package physical

import (
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/vnode"
)

// TestJournalCompactionCrashSweep crashes the NVC journal compaction at
// every device write offset — clean crashes and torn writes — and checks
// that the replayed cache after reopen always equals the pre-compaction
// cache.  Compaction replaces the journal with a snapshot of the live
// entries via shadow + rename, so a crash anywhere inside it must leave
// either the old log or the new snapshot on disk; both replay to the same
// cache, and reopen must also sweep up any leftover compaction shadow.
func TestJournalCompactionCrashSweep(t *testing.T) {
	setup := func() (*Layer, *disk.Device, []NewVersion) {
		l, dev := newLayer(t, 1)
		l.NoteNewVersion(RootPath(), fid(2, 100), 2)
		l.NoteNewVersion(RootPath(), fid(3, 200), 3)
		l.NoteNewVersion(RootPath(), fid(2, 100), 2) // coalesced, Seen=2
		l.NoteNewVersion(RootPath(), fid(4, 300), 4)
		l.DeferPending(fid(3, 200), 9) // backoff state rides along
		want := l.PendingVersions()
		if len(want) != 3 {
			t.Fatalf("precondition: %d pending, want 3", len(want))
		}
		return l, dev, want
	}

	compact := func(l *Layer) error {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.rewriteJournalLocked()
	}

	// Count the writes one full compaction costs on an undisturbed run.
	l, dev, _ := setup()
	before := dev.Stats().Writes
	if err := compact(l); err != nil {
		t.Fatal(err)
	}
	totalWrites := int(dev.Stats().Writes - before)
	if totalWrites == 0 {
		t.Fatal("compaction issued no writes; the sweep would test nothing")
	}

	for _, torn := range []bool{false, true} {
		for crashAfter := 0; crashAfter <= totalWrites; crashAfter++ {
			l, dev, want := setup()
			if torn {
				dev.FaultAfterWritesTorn(crashAfter, 64)
			} else {
				dev.FaultAfterWrites(crashAfter)
			}
			compactErr := compact(l)
			crashed := dev.Faulted()
			dev.ClearFault()
			if !crashed && compactErr != nil {
				t.Fatalf("torn=%v crashAfter=%d: compaction failed without a fault: %v", torn, crashAfter, compactErr)
			}

			nl := reopen(t, dev)
			got := nl.PendingVersions()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("torn=%v crashAfter=%d (crashed=%v, compactErr=%v): pending diverged:\n got %+v\nwant %+v",
					torn, crashAfter, crashed, compactErr, got, want)
			}
			if _, err := nl.root.Lookup(nvcjFileName + suffixShadow); vnode.AsErrno(err) != vnode.ENOENT {
				t.Fatalf("torn=%v crashAfter=%d: compaction shadow survived reopen: %v", torn, crashAfter, err)
			}
			if problems, err := nl.Check(); err != nil {
				t.Fatalf("torn=%v crashAfter=%d: ficus check: %v", torn, crashAfter, err)
			} else if len(problems) != 0 {
				t.Fatalf("torn=%v crashAfter=%d: ficus check found: %v", torn, crashAfter, problems)
			}
		}
	}
}
