package authfs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

func newUFS(t testing.TB) vnode.VFS {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(4096), 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ufsvn.New(fs)
}

// TestConformanceFullAccess: with an all-granting ACL the layer is a pure
// pass-through — the whole suite must hold.
func TestConformanceFullAccess(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: ufs.MaxNameLen},
		func(t *testing.T) vnode.VFS {
			return New(newUFS(t), NewACL(PermAll), Credential{User: "root"})
		})
}

// TestConformanceOverFicusStack: the auth layer above a complete Ficus
// logical layer.
func TestConformanceOverFicusStack(t *testing.T) {
	vol := ids.VolumeHandle{Allocator: 6, Volume: 6}
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: logical.MaxName},
		func(t *testing.T) vnode.VFS {
			fs, err := ufs.Mkfs(disk.New(8192), 2048, nil)
			if err != nil {
				t.Fatal(err)
			}
			phys, err := physical.Format(ufsvn.New(fs), vol, 1)
			if err != nil {
				t.Fatal(err)
			}
			lay := logical.New(vol, []logical.Replica{{ID: 1, FS: phys}}, logical.Options{})
			return New(lay, NewACL(PermAll), Credential{User: "root"})
		})
}

func TestReadOnlyCredential(t *testing.T) {
	lower := newUFS(t)
	// Seed content as an unrestricted principal.
	admin, _ := New(lower, NewACL(PermAll), Credential{User: "admin"}).Root()
	f, err := admin.Create("doc", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("published")); err != nil {
		t.Fatal(err)
	}

	acl := NewACL(PermRead) // everyone may read, nobody may write
	guest, _ := New(lower, acl, Credential{User: "guest"}).Root()
	g, err := guest.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	data, err := vnode.ReadFile(g)
	if err != nil || string(data) != "published" {
		t.Fatalf("%q %v", data, err)
	}
	if _, err := g.WriteAt([]byte("defaced"), 0); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("write: %v, want EPERM", err)
	}
	if _, err := guest.Create("new", true); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("create: %v, want EPERM", err)
	}
	if err := guest.Remove("doc"); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("remove: %v, want EPERM", err)
	}
	if err := g.Open(vnode.OpenWrite); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("open for write: %v, want EPERM", err)
	}
	if err := g.Open(vnode.OpenRead); err != nil {
		t.Fatalf("open for read: %v", err)
	}
	if err := g.Access(0o2); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("access(w): %v", err)
	}
	if err := g.Access(0o4); err != nil {
		t.Fatalf("access(r): %v", err)
	}
}

func TestPerPrefixGrants(t *testing.T) {
	lower := newUFS(t)
	admin, _ := New(lower, NewACL(PermAll), Credential{User: "admin"}).Root()
	for _, d := range []string{"home", "public"} {
		if _, err := admin.Mkdir(d); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := admin.Lookup("home")
	if _, err := h.(interface {
		Mkdir(string) (vnode.Vnode, error)
	}).Mkdir("alice"); err != nil {
		t.Fatal(err)
	}

	acl := NewACL(0,
		Rule{User: Anyone, Prefix: "/", Perm: PermRead},
		Rule{User: "alice", Prefix: "/home/alice", Perm: PermAll},
	)
	alice, _ := New(lower, acl, Credential{User: "alice"}).Root()
	// Alice writes in her home...
	home, err := vnode.Walk(alice, "home/alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.Create("diary", true); err != nil {
		t.Fatalf("alice in her home: %v", err)
	}
	// ... but not elsewhere.
	pub, err := alice.Lookup("public")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Create("x", true); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("alice outside her home: %v", err)
	}
	// Bob cannot write in alice's home.
	bob, _ := New(lower, acl, Credential{User: "bob"}).Root()
	bhome, err := vnode.Walk(bob, "home/alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bhome.Create("graffiti", true); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("bob in alice's home: %v", err)
	}
	// Everyone reads everywhere.
	if _, err := vnode.ReadFile(mustWalk(t, bob, "home/alice/diary")); err != nil {
		t.Fatalf("bob reading: %v", err)
	}
}

func mustWalk(t *testing.T, root vnode.Vnode, path string) vnode.Vnode {
	t.Helper()
	v, err := vnode.Walk(root, path)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLaterRulesOverride(t *testing.T) {
	acl := NewACL(0,
		Rule{User: Anyone, Prefix: "/", Perm: PermAll},
		Rule{User: Anyone, Prefix: "/frozen", Perm: PermRead},
	)
	if !acl.Allowed("x", "/anything", PermWrite) {
		t.Fatal("general grant lost")
	}
	if acl.Allowed("x", "/frozen/file", PermWrite) {
		t.Fatal("override ignored")
	}
	if !acl.Allowed("x", "/frozen/file", PermRead) {
		t.Fatal("read under override lost")
	}
	// Prefix matching is component-wise, not string-wise.
	if acl.Allowed("x", "/frozenlake", PermWrite) == false {
		t.Fatal("/frozenlake wrongly matched prefix /frozen")
	}
	acl.Append(Rule{User: "x", Prefix: "/frozen", Perm: PermAll})
	if !acl.Allowed("x", "/frozen/f", PermWrite) {
		t.Fatal("Append rule not honored")
	}
}

func TestRenameNeedsBothSides(t *testing.T) {
	lower := newUFS(t)
	admin, _ := New(lower, NewACL(PermAll), Credential{User: "admin"}).Root()
	admin.Mkdir("rw")
	admin.Mkdir("ro")
	rw, _ := admin.Lookup("rw")
	if _, err := rw.(interface {
		Create(string, bool) (vnode.Vnode, error)
	}).Create("f", true); err != nil {
		t.Fatal(err)
	}

	acl := NewACL(0,
		Rule{User: Anyone, Prefix: "/", Perm: PermRead},
		Rule{User: Anyone, Prefix: "/rw", Perm: PermAll},
	)
	user, _ := New(lower, acl, Credential{User: "u"}).Root()
	urw, _ := user.Lookup("rw")
	uro, _ := user.Lookup("ro")
	if err := urw.Rename("f", uro, "f"); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("rename into read-only dir: %v", err)
	}
	if err := urw.Rename("f", urw, "g"); err != nil {
		t.Fatalf("rename within writable dir: %v", err)
	}
}
