// Package authfs is a stackable user-authentication layer — the third of
// the services the paper expects to slip into a vnode stack ("we expect to
// use it for performance monitoring, user authentication and encryption",
// §1).  A mount carries a credential; an access-control list maps
// (principal, path prefix) to read/write rights; every operation that
// crosses the layer is checked before it is forwarded.  Like the other
// layers it is purely interposed: nothing below it changes.
package authfs

import (
	"strings"
	"sync"

	"repro/internal/vnode"
)

// Perm is a set of access rights.
type Perm int

// Rights.
const (
	PermRead Perm = 1 << iota
	PermWrite
)

// PermAll grants everything.
const PermAll = PermRead | PermWrite

// Credential identifies a principal for one mount of the layer.
type Credential struct {
	User string
}

// Anyone matches every principal in a rule.
const Anyone = "*"

// Rule grants rights to a principal under a path prefix ("" or "/" = the
// whole tree).  Later rules override earlier ones.
type Rule struct {
	User   string
	Prefix string
	Perm   Perm
}

// ACL is an ordered rule list with a default.  Safe for concurrent use;
// one ACL is typically shared by many mounts.
type ACL struct {
	mu    sync.RWMutex
	def   Perm
	rules []Rule
}

// NewACL builds an ACL whose unmatched default is def.
func NewACL(def Perm, rules ...Rule) *ACL {
	return &ACL{def: def, rules: rules}
}

// Append adds a rule (later rules win).
func (a *ACL) Append(r Rule) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rules = append(a.rules, r)
}

// Allowed reports whether user holds all rights in want on path.
func (a *ACL) Allowed(user, path string, want Perm) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	perm := a.def
	for _, r := range a.rules {
		if r.User != Anyone && r.User != user {
			continue
		}
		if !prefixMatch(r.Prefix, path) {
			continue
		}
		perm = r.Perm
	}
	return perm&want == want
}

func prefixMatch(prefix, path string) bool {
	prefix = strings.Trim(prefix, "/")
	path = strings.Trim(path, "/")
	if prefix == "" {
		return true
	}
	if path == prefix {
		return true
	}
	return strings.HasPrefix(path, prefix+"/")
}

// VFS is one credentialed view of the lower file system.
type VFS struct {
	lower vnode.VFS
	acl   *ACL
	cred  Credential
}

// New wraps lower with access control under cred.
func New(lower vnode.VFS, acl *ACL, cred Credential) *VFS {
	return &VFS{lower: lower, acl: acl, cred: cred}
}

// Root returns the guarded root.
func (a *VFS) Root() (vnode.Vnode, error) {
	v, err := a.lower.Root()
	if err != nil {
		return nil, err
	}
	return &anode{fs: a, lower: v}, nil
}

// Sync forwards (no rights needed to flush).
func (a *VFS) Sync() error { return a.lower.Sync() }

func (a *VFS) check(path string, want Perm) error {
	if a.acl.Allowed(a.cred.User, path, want) {
		return nil
	}
	return vnode.EPERM
}

type anode struct {
	fs    *VFS
	lower vnode.Vnode
	path  string
}

func (v *anode) childPath(name string) string {
	if v.path == "" {
		return name
	}
	return v.path + "/" + name
}

func (v *anode) wrap(lower vnode.Vnode, path string) vnode.Vnode {
	return &anode{fs: v.fs, lower: lower, path: path}
}

func (v *anode) Handle() string { return v.lower.Handle() }

func (v *anode) Lookup(name string) (vnode.Vnode, error) {
	p := v.childPath(name)
	if err := v.fs.check(p, PermRead); err != nil {
		return nil, err
	}
	c, err := v.lower.Lookup(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c, p), nil
}

func (v *anode) Create(name string, excl bool) (vnode.Vnode, error) {
	p := v.childPath(name)
	if err := v.fs.check(p, PermWrite); err != nil {
		return nil, err
	}
	c, err := v.lower.Create(name, excl)
	if err != nil {
		return nil, err
	}
	return v.wrap(c, p), nil
}

func (v *anode) Mkdir(name string) (vnode.Vnode, error) {
	p := v.childPath(name)
	if err := v.fs.check(p, PermWrite); err != nil {
		return nil, err
	}
	c, err := v.lower.Mkdir(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c, p), nil
}

func (v *anode) Symlink(name, target string) error {
	if err := v.fs.check(v.childPath(name), PermWrite); err != nil {
		return err
	}
	return v.lower.Symlink(name, target)
}

func (v *anode) Readlink() (string, error) {
	if err := v.fs.check(v.path, PermRead); err != nil {
		return "", err
	}
	return v.lower.Readlink()
}

func (v *anode) Open(f vnode.OpenFlags) error {
	want := PermRead
	if f&vnode.OpenWrite != 0 {
		want |= PermWrite
	}
	if err := v.fs.check(v.path, want); err != nil {
		return err
	}
	return v.lower.Open(f)
}

func (v *anode) Close(f vnode.OpenFlags) error { return v.lower.Close(f) }

func (v *anode) ReadAt(p []byte, off int64) (int, error) {
	if err := v.fs.check(v.path, PermRead); err != nil {
		return 0, err
	}
	return v.lower.ReadAt(p, off)
}

func (v *anode) WriteAt(p []byte, off int64) (int, error) {
	if err := v.fs.check(v.path, PermWrite); err != nil {
		return 0, err
	}
	return v.lower.WriteAt(p, off)
}

func (v *anode) Truncate(size uint64) error {
	if err := v.fs.check(v.path, PermWrite); err != nil {
		return err
	}
	return v.lower.Truncate(size)
}

func (v *anode) Fsync() error { return v.lower.Fsync() }

func (v *anode) Getattr() (vnode.Attr, error) {
	if err := v.fs.check(v.path, PermRead); err != nil {
		return vnode.Attr{}, err
	}
	return v.lower.Getattr()
}

func (v *anode) Setattr(sa vnode.SetAttr) error {
	if err := v.fs.check(v.path, PermWrite); err != nil {
		return err
	}
	return v.lower.Setattr(sa)
}

// Access answers the rights question directly from the ACL.
func (v *anode) Access(mode uint16) error {
	var want Perm
	if mode&0o4 != 0 {
		want |= PermRead
	}
	if mode&0o2 != 0 {
		want |= PermWrite
	}
	if want == 0 {
		want = PermRead
	}
	return v.fs.check(v.path, want)
}

func (v *anode) Remove(name string) error {
	if err := v.fs.check(v.childPath(name), PermWrite); err != nil {
		return err
	}
	return v.lower.Remove(name)
}

func (v *anode) Rmdir(name string) error {
	if err := v.fs.check(v.childPath(name), PermWrite); err != nil {
		return err
	}
	return v.lower.Rmdir(name)
}

func (v *anode) Link(name string, target vnode.Vnode) error {
	t, ok := target.(*anode)
	if !ok || t.fs != v.fs {
		return vnode.EXDEV
	}
	if err := v.fs.check(v.childPath(name), PermWrite); err != nil {
		return err
	}
	if err := v.fs.check(t.path, PermRead); err != nil {
		return err
	}
	return v.lower.Link(name, t.lower)
}

func (v *anode) Rename(oldName string, dstDir vnode.Vnode, newName string) error {
	d, ok := dstDir.(*anode)
	if !ok || d.fs != v.fs {
		return vnode.EXDEV
	}
	if err := v.fs.check(v.childPath(oldName), PermWrite); err != nil {
		return err
	}
	if err := v.fs.check(d.childPath(newName), PermWrite); err != nil {
		return err
	}
	return v.lower.Rename(oldName, d.lower, newName)
}

func (v *anode) Readdir() ([]vnode.Dirent, error) {
	if err := v.fs.check(v.path, PermRead); err != nil {
		return nil, err
	}
	return v.lower.Readdir()
}
