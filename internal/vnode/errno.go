package vnode

import (
	"errors"
	"fmt"
)

// Errno is the canonical error vocabulary shared by all layers.  Because the
// NFS layer must carry errors across a wire (paper §2.2), every layer maps
// its internal errors to these values at its boundary; errors.Is works both
// locally and across the transport.
type Errno int

// Canonical error codes.
const (
	EOK Errno = iota
	ENOENT
	EEXIST
	ENOTDIR
	EISDIR
	ENOTEMPTY
	ENAMETOOLONG
	EINVAL
	ENOSPC
	EIO
	ESTALE   // handle no longer resolves (NFS semantics)
	EROFS    // replica not writable under the active policy
	EXDEV    // cross-layer or cross-volume operation
	EPERM    // operation not permitted (e.g. hard link to directory)
	ENOTSUP  // operation not supported by this layer
	ECONFL   // version-vector conflict detected on a regular file
	EUNAVAIL // no replica of the file is currently accessible
	ENOSTOR  // entry known but this volume replica stores no copy (§4.1)
)

var errnoNames = map[Errno]string{
	EOK:          "success",
	ENOENT:       "no such file or directory",
	EEXIST:       "file exists",
	ENOTDIR:      "not a directory",
	EISDIR:       "is a directory",
	ENOTEMPTY:    "directory not empty",
	ENAMETOOLONG: "name too long",
	EINVAL:       "invalid argument",
	ENOSPC:       "no space on device",
	EIO:          "input/output error",
	ESTALE:       "stale file handle",
	EROFS:        "read-only replica",
	EXDEV:        "cross-device operation",
	EPERM:        "operation not permitted",
	ENOTSUP:      "operation not supported",
	ECONFL:       "replica update conflict",
	EUNAVAIL:     "no replica accessible",
	ENOSTOR:      "file not stored in this volume replica",
}

// Error implements the error interface.
func (e Errno) Error() string {
	if s, ok := errnoNames[e]; ok {
		return "vnode: " + s
	}
	return fmt.Sprintf("vnode: errno %d", int(e))
}

// Code returns the wire representation.
func (e Errno) Code() int { return int(e) }

// ErrnoFromCode recovers an Errno from its wire code, defaulting to EIO for
// unknown codes so a garbled wire error never becomes a silent success.
func ErrnoFromCode(c int) Errno {
	e := Errno(c)
	if _, ok := errnoNames[e]; !ok || e == EOK {
		if e == EOK {
			return EOK
		}
		return EIO
	}
	return e
}

// AsErrno maps an arbitrary error to the canonical vocabulary.  Errno values
// pass through; anything else degrades to EIO.  Layers adapt their
// substrate's errors before results cross a layer boundary.
func AsErrno(err error) Errno {
	if err == nil {
		return EOK
	}
	var e Errno
	if errors.As(err, &e) {
		return e
	}
	return EIO
}
