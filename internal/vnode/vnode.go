// Package vnode defines the symmetric layer interface at the heart of the
// Ficus stackable-layers architecture (paper §2.1): "the syntactic
// interface used to export services provided by a particular module is the
// same interface used by that module to access services provided by other
// modules in the stack."
//
// It is modelled on the SunOS vnode interface (Kleiman 1986) that Ficus
// adopted: about two dozen operations covering naming, attribute, data and
// directory services.  Every Ficus layer — logical, NFS transport,
// physical — both implements and consumes this interface, so layers can be
// inserted, removed, or split across hosts without modifying their
// neighbours.  The package also supplies the null (pass-through) layer and
// an instrumented hook layer used by the layer-crossing-cost experiments
// (E1, E2).
package vnode

import "fmt"

// VType is a vnode's file type.
type VType int

// Vnode types.
const (
	VNon VType = iota // invalid
	VReg              // regular file
	VDir              // directory
	VLnk              // symbolic link
)

// String names the type.
func (t VType) String() string {
	switch t {
	case VReg:
		return "file"
	case VDir:
		return "dir"
	case VLnk:
		return "symlink"
	default:
		return fmt.Sprintf("VType(%d)", int(t))
	}
}

// OpenFlags carries the intent of an Open or Close.
type OpenFlags int

// Open intents.
const (
	OpenRead  OpenFlags = 1 << iota // open for reading
	OpenWrite                       // open for writing
)

// Attr is the attribute block returned by Getattr.
type Attr struct {
	Type  VType
	Mode  uint16
	Nlink uint32
	Size  uint64
	Mtime uint64 // logical clock, monotone per file system
	Ctime uint64
	// FileID is an opaque stable identity for the file within its file
	// system (a UFS inode number, or a Ficus file handle).  Two vnodes
	// reached by different names denote the same file iff their FileIDs
	// are equal.
	FileID string
	// GraftVol is set by the Ficus physical layer on graft points: the
	// string form of the volume to be grafted here (paper §4.3).  Empty
	// everywhere else.  Carrying it in the attribute block lets the graft
	// marker cross the NFS transport without a new vnode operation — the
	// same trick the paper plays with open/close over lookup (§2.3).
	GraftVol string
}

// SetAttr updates selected attributes; nil fields are left unchanged.
type SetAttr struct {
	Mode *uint16
	Size *uint64
}

// Dirent is one directory entry.
type Dirent struct {
	Name   string
	FileID string
	Type   VType
	// Value is the auxiliary payload Ficus graft-point entries carry (the
	// storage-site address of a volume replica, paper §4.3).  Empty for
	// ordinary entries.
	Value string
}

// Vnode is one file, directory or symlink as seen through a layer.  All
// implementations must be safe for concurrent use.
//
// Directory-shaped operations (Lookup, Create, ...) fail with ENOTDIR on
// non-directories; data operations fail with EISDIR on directories.
type Vnode interface {
	// Handle returns an opaque token from which the owning layer can
	// recover this vnode (the NFS file handle of paper §2.2).  Handles are
	// stable across lookups of the same file.
	Handle() string

	// Lookup resolves one name component in this directory.
	Lookup(name string) (Vnode, error)
	// Create makes (or, when excl is false, reuses) a regular file.
	Create(name string, excl bool) (Vnode, error)
	// Mkdir makes a directory.
	Mkdir(name string) (Vnode, error)
	// Symlink makes a symbolic link to target.
	Symlink(name, target string) error
	// Readlink returns a symlink's target.
	Readlink() (string, error)

	// Open announces intent to use the file.  NFS famously discards this
	// call (paper §2.2); the Ficus logical layer therefore re-encodes it
	// through Lookup (§2.3).
	Open(flags OpenFlags) error
	// Close announces the end of use.
	Close(flags OpenFlags) error

	// ReadAt reads at a byte offset, returning io.EOF semantics as os.File.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes at a byte offset, extending the file as needed.
	WriteAt(p []byte, off int64) (int, error)
	// Truncate sets the file length.
	Truncate(size uint64) error
	// Fsync forces the file to stable storage.
	Fsync() error

	// Getattr returns the attribute block.
	Getattr() (Attr, error)
	// Setattr updates attributes.
	Setattr(sa SetAttr) error
	// Access checks permission bits (informational in this reproduction).
	Access(mode uint16) error

	// Remove unlinks a non-directory child.
	Remove(name string) error
	// Rmdir removes an empty child directory.
	Rmdir(name string) error
	// Link adds a hard link to target under name.
	Link(name string, target Vnode) error
	// Rename moves oldName in this directory to newName in dstDir (which
	// must belong to the same layer instance).
	Rename(oldName string, dstDir Vnode, newName string) error
	// Readdir lists entries, excluding "." and "..".
	Readdir() ([]Dirent, error)
}

// VFS is a mounted file system exposing a root vnode.
type VFS interface {
	// Root returns the root directory vnode.
	Root() (Vnode, error)
	// Sync flushes any volatile state to stable storage.
	Sync() error
}
