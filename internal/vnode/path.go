package vnode

import (
	"io"
	"strings"
)

// SplitPath breaks a slash-separated path into components, ignoring empty
// segments ("//", leading and trailing slashes) and "." segments.
func SplitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}

// Walk resolves a slash-separated path from dir by repeated Lookup, the way
// the system-call layer translates pathnames component by component (which
// is what lets autografting intercept graft points mid-walk, paper §4.4).
func Walk(dir Vnode, path string) (Vnode, error) {
	v := dir
	for _, name := range SplitPath(path) {
		c, err := v.Lookup(name)
		if err != nil {
			return nil, err
		}
		v = c
	}
	return v, nil
}

// WalkParent resolves all but the last component and returns the parent
// vnode plus the final name.  It fails with EINVAL for an empty path.
func WalkParent(dir Vnode, path string) (Vnode, string, error) {
	parts := SplitPath(path)
	if len(parts) == 0 {
		return nil, "", EINVAL
	}
	parent, err := walkParts(dir, parts[:len(parts)-1])
	if err != nil {
		return nil, "", err
	}
	return parent, parts[len(parts)-1], nil
}

func walkParts(dir Vnode, parts []string) (Vnode, error) {
	v := dir
	for _, name := range parts {
		c, err := v.Lookup(name)
		if err != nil {
			return nil, err
		}
		v = c
	}
	return v, nil
}

// MkdirAll creates every missing directory along path and returns the final
// directory vnode.
func MkdirAll(dir Vnode, path string) (Vnode, error) {
	v := dir
	for _, name := range SplitPath(path) {
		c, err := v.Lookup(name)
		if err == ENOENT || AsErrno(err) == ENOENT {
			c, err = v.Mkdir(name)
		}
		if err != nil {
			return nil, err
		}
		v = c
	}
	return v, nil
}

// ReadFile reads the entire contents of a file vnode.
func ReadFile(v Vnode) ([]byte, error) {
	a, err := v.Getattr()
	if err != nil {
		return nil, err
	}
	p := make([]byte, a.Size)
	if a.Size == 0 {
		return p, nil
	}
	n, err := v.ReadAt(p, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return p[:n], nil
}

// WriteFile replaces the entire contents of a file vnode.
func WriteFile(v Vnode, data []byte) error {
	if err := v.Truncate(0); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	_, err := v.WriteAt(data, 0)
	return err
}
