package vnode

import "sync/atomic"

// NullVFS is the pass-through layer: it forwards every operation to the
// layer below and rewraps returned vnodes so the stack is preserved across
// Lookup/Create/Mkdir.  Per paper §6, the cost of crossing it is one
// procedure call, one pointer indirection, and storage for another vnode
// block — experiment E2 measures exactly that by interposing N of these.
type NullVFS struct {
	lower VFS
}

// NewNull interposes a null layer above lower.
func NewNull(lower VFS) *NullVFS { return &NullVFS{lower: lower} }

// Root returns the wrapped root of the lower layer.
func (n *NullVFS) Root() (Vnode, error) {
	v, err := n.lower.Root()
	if err != nil {
		return nil, err
	}
	return &nullVnode{fs: n, lower: v}, nil
}

// Sync forwards to the lower layer.
func (n *NullVFS) Sync() error { return n.lower.Sync() }

type nullVnode struct {
	fs    *NullVFS
	lower Vnode
}

func (v *nullVnode) wrap(lower Vnode) Vnode { return &nullVnode{fs: v.fs, lower: lower} }

// unwrapNull peels a peer vnode down to this layer's lower interface, so
// two-vnode operations (Link, Rename) hand the lower layer its own vnodes.
func (v *nullVnode) unwrap(peer Vnode) Vnode {
	if p, ok := peer.(*nullVnode); ok && p.fs == v.fs {
		return p.lower
	}
	return peer
}

func (v *nullVnode) Handle() string { return v.lower.Handle() }

func (v *nullVnode) Lookup(name string) (Vnode, error) {
	c, err := v.lower.Lookup(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *nullVnode) Create(name string, excl bool) (Vnode, error) {
	c, err := v.lower.Create(name, excl)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *nullVnode) Mkdir(name string) (Vnode, error) {
	c, err := v.lower.Mkdir(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *nullVnode) Symlink(name, target string) error { return v.lower.Symlink(name, target) }
func (v *nullVnode) Readlink() (string, error)         { return v.lower.Readlink() }
func (v *nullVnode) Open(f OpenFlags) error            { return v.lower.Open(f) }
func (v *nullVnode) Close(f OpenFlags) error           { return v.lower.Close(f) }

func (v *nullVnode) ReadAt(p []byte, off int64) (int, error)  { return v.lower.ReadAt(p, off) }
func (v *nullVnode) WriteAt(p []byte, off int64) (int, error) { return v.lower.WriteAt(p, off) }
func (v *nullVnode) Truncate(size uint64) error               { return v.lower.Truncate(size) }
func (v *nullVnode) Fsync() error                             { return v.lower.Fsync() }

func (v *nullVnode) Getattr() (Attr, error)     { return v.lower.Getattr() }
func (v *nullVnode) Setattr(sa SetAttr) error   { return v.lower.Setattr(sa) }
func (v *nullVnode) Access(mode uint16) error   { return v.lower.Access(mode) }
func (v *nullVnode) Remove(name string) error   { return v.lower.Remove(name) }
func (v *nullVnode) Rmdir(name string) error    { return v.lower.Rmdir(name) }
func (v *nullVnode) Readdir() ([]Dirent, error) { return v.lower.Readdir() }

func (v *nullVnode) Link(name string, target Vnode) error {
	return v.lower.Link(name, v.unwrap(target))
}

func (v *nullVnode) Rename(oldName string, dstDir Vnode, newName string) error {
	return v.lower.Rename(oldName, v.unwrap(dstDir), newName)
}

// HookVFS is a null layer with a counter and an optional callback invoked
// before every forwarded operation.  It is the "performance monitoring"
// layer the paper anticipates slipping into a stack (§1) and the probe used
// by E1/E2 and examples/layers.
type HookVFS struct {
	NullVFS
	ops    atomic.Uint64
	onCall func(op string)
}

// NewHook interposes a hook layer above lower; onCall may be nil.
func NewHook(lower VFS, onCall func(op string)) *HookVFS {
	h := &HookVFS{onCall: onCall}
	h.NullVFS.lower = lower
	return h
}

// Ops returns the number of operations that have crossed this layer.
func (h *HookVFS) Ops() uint64 { return h.ops.Load() }

func (h *HookVFS) note(op string) {
	h.ops.Add(1)
	if h.onCall != nil {
		h.onCall(op)
	}
}

// Root returns the wrapped, counted root.
func (h *HookVFS) Root() (Vnode, error) {
	h.note("root")
	v, err := h.NullVFS.lower.Root()
	if err != nil {
		return nil, err
	}
	return &hookVnode{nullVnode{fs: &h.NullVFS, lower: v}, h}, nil
}

type hookVnode struct {
	nullVnode
	h *HookVFS
}

func (v *hookVnode) wrap(lower Vnode) Vnode {
	return &hookVnode{nullVnode{fs: v.fs, lower: lower}, v.h}
}

func (v *hookVnode) unwrap(peer Vnode) Vnode {
	if p, ok := peer.(*hookVnode); ok && p.h == v.h {
		return p.lower
	}
	return peer
}

func (v *hookVnode) Lookup(name string) (Vnode, error) {
	v.h.note("lookup")
	c, err := v.lower.Lookup(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *hookVnode) Create(name string, excl bool) (Vnode, error) {
	v.h.note("create")
	c, err := v.lower.Create(name, excl)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *hookVnode) Mkdir(name string) (Vnode, error) {
	v.h.note("mkdir")
	c, err := v.lower.Mkdir(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *hookVnode) Symlink(name, target string) error {
	v.h.note("symlink")
	return v.lower.Symlink(name, target)
}

func (v *hookVnode) Readlink() (string, error) {
	v.h.note("readlink")
	return v.lower.Readlink()
}

func (v *hookVnode) Open(f OpenFlags) error {
	v.h.note("open")
	return v.lower.Open(f)
}

func (v *hookVnode) Close(f OpenFlags) error {
	v.h.note("close")
	return v.lower.Close(f)
}

func (v *hookVnode) ReadAt(p []byte, off int64) (int, error) {
	v.h.note("read")
	return v.lower.ReadAt(p, off)
}

func (v *hookVnode) WriteAt(p []byte, off int64) (int, error) {
	v.h.note("write")
	return v.lower.WriteAt(p, off)
}

func (v *hookVnode) Truncate(size uint64) error {
	v.h.note("truncate")
	return v.lower.Truncate(size)
}

func (v *hookVnode) Fsync() error {
	v.h.note("fsync")
	return v.lower.Fsync()
}

func (v *hookVnode) Getattr() (Attr, error) {
	v.h.note("getattr")
	return v.lower.Getattr()
}

func (v *hookVnode) Setattr(sa SetAttr) error {
	v.h.note("setattr")
	return v.lower.Setattr(sa)
}

func (v *hookVnode) Access(mode uint16) error {
	v.h.note("access")
	return v.lower.Access(mode)
}

func (v *hookVnode) Remove(name string) error {
	v.h.note("remove")
	return v.lower.Remove(name)
}

func (v *hookVnode) Rmdir(name string) error {
	v.h.note("rmdir")
	return v.lower.Rmdir(name)
}

func (v *hookVnode) Readdir() ([]Dirent, error) {
	v.h.note("readdir")
	return v.lower.Readdir()
}

func (v *hookVnode) Link(name string, target Vnode) error {
	v.h.note("link")
	return v.lower.Link(name, v.unwrap(target))
}

func (v *hookVnode) Rename(oldName string, dstDir Vnode, newName string) error {
	v.h.note("rename")
	return v.lower.Rename(oldName, v.unwrap(dstDir), newName)
}
