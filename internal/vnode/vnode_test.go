package vnode_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

func baseVFS(t *testing.T) vnode.VFS {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(2048), 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ufsvn.New(fs)
}

// TestNullStackConformance runs the full conformance suite through a stack
// of 3 null layers: transparent interposition is the paper's core
// architectural claim (Fig. 1, §7).
func TestNullStackConformance(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: ufs.MaxNameLen},
		func(t *testing.T) vnode.VFS {
			var fs vnode.VFS = baseVFS(t)
			for i := 0; i < 3; i++ {
				fs = vnode.NewNull(fs)
			}
			return fs
		})
}

func TestHookLayerCountsAndObserves(t *testing.T) {
	var calls []string
	h := vnode.NewHook(baseVFS(t), func(op string) { calls = append(calls, op) })
	root, err := h.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("f"); err != nil {
		t.Fatal(err)
	}
	if h.Ops() != 4 { // root, create, write, lookup
		t.Fatalf("ops %d, want 4: %v", h.Ops(), calls)
	}
	want := []string{"root", "create", "write", "lookup"}
	for i, w := range want {
		if calls[i] != w {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func TestHookSeesAllOpsThroughStack(t *testing.T) {
	// hook above two nulls: operations must still be counted once each.
	base := baseVFS(t)
	h := vnode.NewHook(vnode.NewNull(vnode.NewNull(base)), nil)
	root, _ := h.Root()
	d, err := root.Mkdir("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Rename("d", root, "e"); err != nil {
		t.Fatal(err)
	}
	_ = d
	if err := root.Rmdir("e"); err != nil {
		t.Fatal(err)
	}
	if h.Ops() != 4 {
		t.Fatalf("ops %d, want 4", h.Ops())
	}
}

func TestNullLayerUnwrapsPeersForRename(t *testing.T) {
	n := vnode.NewNull(baseVFS(t))
	root, _ := n.Root()
	d1, _ := root.Mkdir("d1")
	d2, _ := root.Mkdir("d2")
	if _, err := d1.Create("f", true); err != nil {
		t.Fatal(err)
	}
	// dstDir is a wrapped vnode of the same layer; Rename must unwrap it
	// before handing it to UFS, or UFS would see a foreign type.
	if err := d1.Rename("f", d2, "g"); err != nil {
		t.Fatalf("rename through null layer: %v", err)
	}
	if _, err := d2.Lookup("g"); err != nil {
		t.Fatal(err)
	}
}

func TestErrnoVocabulary(t *testing.T) {
	if vnode.ENOENT.Error() == "" || vnode.Errno(999).Error() == "" {
		t.Fatal("empty error strings")
	}
	if vnode.AsErrno(nil) != vnode.EOK {
		t.Fatal("nil should map to EOK")
	}
	wrapped := fmt.Errorf("context: %w", vnode.ENOTDIR)
	if vnode.AsErrno(wrapped) != vnode.ENOTDIR {
		t.Fatal("wrapped errno lost")
	}
	if vnode.AsErrno(errors.New("opaque")) != vnode.EIO {
		t.Fatal("opaque error should degrade to EIO")
	}
	if got := vnode.ErrnoFromCode(vnode.ENOSPC.Code()); got != vnode.ENOSPC {
		t.Fatalf("round trip: %v", got)
	}
	if got := vnode.ErrnoFromCode(424242); got != vnode.EIO {
		t.Fatalf("unknown code: %v", got)
	}
	if got := vnode.ErrnoFromCode(0); got != vnode.EOK {
		t.Fatalf("zero code: %v", got)
	}
}

func TestSplitPath(t *testing.T) {
	cases := map[string][]string{
		"":            nil,
		"/":           nil,
		"a":           {"a"},
		"/a/b/c":      {"a", "b", "c"},
		"a//b/":       {"a", "b"},
		"./a/./b":     {"a", "b"},
		"a/b/c/d/e/f": {"a", "b", "c", "d", "e", "f"},
	}
	for in, want := range cases {
		got := vnode.SplitPath(in)
		if len(got) != len(want) {
			t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestWalkAndMkdirAll(t *testing.T) {
	fs := baseVFS(t)
	root, _ := fs.Root()
	if _, err := vnode.MkdirAll(root, "a/b/c"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if _, err := vnode.MkdirAll(root, "a/b/c"); err != nil {
		t.Fatal(err)
	}
	v, err := vnode.Walk(root, "/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := v.Getattr()
	if a.Type != vnode.VDir {
		t.Fatalf("type %v", a.Type)
	}
	if _, err := vnode.Walk(root, "a/missing/c"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("walk missing: %v", err)
	}
	parent, name, err := vnode.WalkParent(root, "a/b/newfile")
	if err != nil || name != "newfile" {
		t.Fatalf("WalkParent: %q, %v", name, err)
	}
	if _, err := parent.Create(name, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := vnode.WalkParent(root, "/"); vnode.AsErrno(err) != vnode.EINVAL {
		t.Fatalf("WalkParent of root: %v", err)
	}
}

func TestReadWriteFileHelpers(t *testing.T) {
	fs := baseVFS(t)
	root, _ := fs.Root()
	f, _ := root.Create("f", true)
	if err := vnode.WriteFile(f, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(f)
	if err != nil || string(got) != "hello" {
		t.Fatalf("%q, %v", got, err)
	}
	if err := vnode.WriteFile(f, nil); err != nil {
		t.Fatal(err)
	}
	got, err = vnode.ReadFile(f)
	if err != nil || len(got) != 0 {
		t.Fatalf("after empty write: %q, %v", got, err)
	}
}

func TestVTypeString(t *testing.T) {
	for ty, want := range map[vnode.VType]string{
		vnode.VReg: "file", vnode.VDir: "dir", vnode.VLnk: "symlink",
	} {
		if ty.String() != want {
			t.Errorf("%d -> %q", int(ty), ty.String())
		}
	}
	if vnode.VType(42).String() == "" {
		t.Error("unknown VType should render")
	}
}
