// Package ufs implements the Unix file system substrate that the Ficus
// physical layer stores file replicas in (paper §2.1, §2.6).  It is an
// inode-based file system on a simulated block device (internal/disk) with
// the three caches whose behaviour the paper's performance argument depends
// on: a buffer (block) cache, an inode cache, and a directory name lookup
// cache (DNLC).  Every cache can be disabled or flushed so experiment E3
// can measure cold-path and warm-path disk I/O counts exactly.
//
// The on-disk layout is conventional:
//
//	block 0              superblock
//	inode bitmap         1 bit per inode
//	block bitmap         1 bit per block
//	inode table          128-byte inodes, 32 per block
//	data blocks          file contents, directories, indirect blocks
//
// Files address data through 10 direct pointers, one single-indirect and
// one double-indirect block.  Directories are arrays of fixed 272-byte
// slots (15 per block) holding <inode, name> pairs, scanned linearly as in
// the historical UFS.
package ufs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/disk"
)

// Geometry constants.
const (
	// BlockSize re-exports the device block size.
	BlockSize = disk.BlockSize
	// NDirect is the number of direct block pointers per inode.
	NDirect = 10
	// PtrsPerBlock is the number of block pointers in an indirect block.
	PtrsPerBlock = BlockSize / 4
	// InodeSize is the on-disk inode size in bytes.
	InodeSize = 128
	// InodesPerBlock is derived from InodeSize.
	InodesPerBlock = BlockSize / InodeSize
	// MaxNameLen is the longest directory entry name, as in 4.2BSD.  The
	// Ficus open/close-over-lookup encoding (paper §2.3) consumes part of
	// this budget; experiment E7 quantifies how much.
	MaxNameLen = 255
	// dirSlotSize is the fixed size of one directory slot.
	dirSlotSize = 272
	// dirSlotsPerBlock is how many slots fit a block.
	dirSlotsPerBlock = BlockSize / dirSlotSize
	// MaxFileBlocks is the largest file in blocks.
	MaxFileBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

	magic     = 0xf1c05001
	rootIno   = 1
	sbBlock   = 0
	inoLength = 4 // bytes of an on-disk inode number
)

// Ino is an inode number.  0 is never a valid inode.
type Ino uint32

// FileType distinguishes inode kinds.
type FileType uint16

// Inode kinds.
const (
	TypeFree FileType = iota
	TypeFile
	TypeDir
	TypeSymlink
)

// String names the type.
func (t FileType) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileType(%d)", uint16(t))
	}
}

// Errors returned by the file system.
var (
	ErrNotExist     = errors.New("ufs: no such file or directory")
	ErrExist        = errors.New("ufs: file exists")
	ErrNotDir       = errors.New("ufs: not a directory")
	ErrIsDir        = errors.New("ufs: is a directory")
	ErrNotEmpty     = errors.New("ufs: directory not empty")
	ErrNameTooLong  = errors.New("ufs: name too long")
	ErrInvalidName  = errors.New("ufs: invalid name")
	ErrNoSpace      = errors.New("ufs: no space on device")
	ErrNoInodes     = errors.New("ufs: out of inodes")
	ErrFileTooBig   = errors.New("ufs: file too large")
	ErrBadInode     = errors.New("ufs: bad inode")
	ErrNotSymlink   = errors.New("ufs: not a symlink")
	ErrNotMounted   = errors.New("ufs: not a ufs filesystem (bad magic)")
	ErrCrossDevice  = errors.New("ufs: cross-device link")
	ErrDirLoop      = errors.New("ufs: operation would orphan directory")
	ErrLinkedDir    = errors.New("ufs: hard link to directory not permitted")
	ErrInvalidWhere = errors.New("ufs: negative offset")
)

// superblock describes the layout; persisted in block 0.
type superblock struct {
	Magic        uint32
	NBlocks      uint32
	NInodes      uint32
	InoBmapStart uint32
	InoBmapLen   uint32
	BlkBmapStart uint32
	BlkBmapLen   uint32
	ITableStart  uint32
	ITableLen    uint32
	DataStart    uint32
}

func (sb *superblock) encode(p []byte) {
	binary.BigEndian.PutUint32(p[0:], sb.Magic)
	binary.BigEndian.PutUint32(p[4:], sb.NBlocks)
	binary.BigEndian.PutUint32(p[8:], sb.NInodes)
	binary.BigEndian.PutUint32(p[12:], sb.InoBmapStart)
	binary.BigEndian.PutUint32(p[16:], sb.InoBmapLen)
	binary.BigEndian.PutUint32(p[20:], sb.BlkBmapStart)
	binary.BigEndian.PutUint32(p[24:], sb.BlkBmapLen)
	binary.BigEndian.PutUint32(p[28:], sb.ITableStart)
	binary.BigEndian.PutUint32(p[32:], sb.ITableLen)
	binary.BigEndian.PutUint32(p[36:], sb.DataStart)
}

func (sb *superblock) decode(p []byte) {
	sb.Magic = binary.BigEndian.Uint32(p[0:])
	sb.NBlocks = binary.BigEndian.Uint32(p[4:])
	sb.NInodes = binary.BigEndian.Uint32(p[8:])
	sb.InoBmapStart = binary.BigEndian.Uint32(p[12:])
	sb.InoBmapLen = binary.BigEndian.Uint32(p[16:])
	sb.BlkBmapStart = binary.BigEndian.Uint32(p[20:])
	sb.BlkBmapLen = binary.BigEndian.Uint32(p[24:])
	sb.ITableStart = binary.BigEndian.Uint32(p[28:])
	sb.ITableLen = binary.BigEndian.Uint32(p[32:])
	sb.DataStart = binary.BigEndian.Uint32(p[36:])
}

// FS is a mounted Unix file system.  All exported methods are safe for
// concurrent use; a single lock serializes operations, which is faithful
// enough for a simulator whose costs are counted in disk I/Os.
type FS struct {
	mu    sync.Mutex
	dev   *disk.Device
	sb    superblock
	bc    *bufferCache
	ic    *inodeCache
	dnlc  *nameCache
	rotor uint32 // next-fit hint for block allocation
	clock uint64 // logical time for mtime/ctime
}

// Options tunes cache sizes and enablement at mount time.
type Options struct {
	// BufferCacheBlocks is the buffer cache capacity (0 means default 256).
	BufferCacheBlocks int
	// InodeCacheEntries is the inode cache capacity (0 means default 256).
	InodeCacheEntries int
	// DNLCEntries is the name cache capacity (0 means default 512).
	DNLCEntries int
	// DisableCaches turns all three caches off; every access hits the
	// device.  Used by the E3 ablation reproducing the AFS-prototype
	// failure mode the paper cites (§2.6).
	DisableCaches bool
}

func (o *Options) withDefaults() Options {
	v := Options{BufferCacheBlocks: 256, InodeCacheEntries: 256, DNLCEntries: 512}
	if o == nil {
		return v
	}
	if o.BufferCacheBlocks > 0 {
		v.BufferCacheBlocks = o.BufferCacheBlocks
	}
	if o.InodeCacheEntries > 0 {
		v.InodeCacheEntries = o.InodeCacheEntries
	}
	if o.DNLCEntries > 0 {
		v.DNLCEntries = o.DNLCEntries
	}
	v.DisableCaches = o.DisableCaches
	return v
}

// Mkfs formats the device with room for at least ninodes inodes and mounts
// the resulting empty file system.  The root directory is created as inode 1.
func Mkfs(dev *disk.Device, ninodes int, opts *Options) (*FS, error) {
	if ninodes < 16 {
		ninodes = 16
	}
	nblocks := dev.Blocks()
	inoBmapLen := (ninodes + BlockSize*8 - 1) / (BlockSize * 8)
	blkBmapLen := (nblocks + BlockSize*8 - 1) / (BlockSize * 8)
	itableLen := (ninodes + InodesPerBlock - 1) / InodesPerBlock
	dataStart := 1 + inoBmapLen + blkBmapLen + itableLen
	if dataStart+8 > nblocks {
		return nil, fmt.Errorf("ufs: device too small: %d blocks, need > %d", nblocks, dataStart+8)
	}
	sb := superblock{
		Magic:        magic,
		NBlocks:      uint32(nblocks),
		NInodes:      uint32(ninodes),
		InoBmapStart: 1,
		InoBmapLen:   uint32(inoBmapLen),
		BlkBmapStart: uint32(1 + inoBmapLen),
		BlkBmapLen:   uint32(blkBmapLen),
		ITableStart:  uint32(1 + inoBmapLen + blkBmapLen),
		ITableLen:    uint32(itableLen),
		DataStart:    uint32(dataStart),
	}
	blk := make([]byte, BlockSize)
	sb.encode(blk)
	if err := dev.Write(sbBlock, blk); err != nil {
		return nil, err
	}
	// Zero the metadata region.
	zero := make([]byte, BlockSize)
	for bn := 1; bn < dataStart; bn++ {
		if err := dev.Write(bn, zero); err != nil {
			return nil, err
		}
	}
	fs := newFS(dev, sb, opts)
	// Mark the metadata blocks (and block 0) allocated in the block bitmap.
	for bn := 0; bn < dataStart; bn++ {
		if err := fs.bmapSet(blkBitmap, uint32(bn), true); err != nil {
			return nil, err
		}
	}
	// Inode 0 is reserved/invalid.
	if err := fs.bmapSet(inoBitmap, 0, true); err != nil {
		return nil, err
	}
	// Create the root directory.
	ino, err := fs.iallocLocked(TypeDir)
	if err != nil {
		return nil, err
	}
	if ino != rootIno {
		return nil, fmt.Errorf("ufs: mkfs: root allocated as inode %d", ino)
	}
	if err := fs.dirInitLocked(ino, ino); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount attaches to a device previously formatted with Mkfs.
func Mount(dev *disk.Device, opts *Options) (*FS, error) {
	blk := make([]byte, BlockSize)
	if err := dev.Read(sbBlock, blk); err != nil {
		return nil, err
	}
	var sb superblock
	sb.decode(blk)
	if sb.Magic != magic {
		return nil, ErrNotMounted
	}
	if int(sb.NBlocks) != dev.Blocks() {
		return nil, fmt.Errorf("ufs: superblock says %d blocks, device has %d", sb.NBlocks, dev.Blocks())
	}
	fs := newFS(dev, sb, opts)
	if err := fs.Recover(); err != nil {
		return nil, fmt.Errorf("ufs: crash recovery: %w", err)
	}
	return fs, nil
}

func newFS(dev *disk.Device, sb superblock, opts *Options) *FS {
	o := opts.withDefaults()
	fs := &FS{
		dev:  dev,
		sb:   sb,
		bc:   newBufferCache(dev, o.BufferCacheBlocks, !o.DisableCaches),
		dnlc: newNameCache(o.DNLCEntries, !o.DisableCaches),
	}
	fs.ic = newInodeCache(fs, o.InodeCacheEntries, !o.DisableCaches)
	fs.rotor = sb.DataStart
	return fs
}

// Root returns the root directory inode.
func (fs *FS) Root() Ino { return rootIno }

// Device returns the underlying block device (for I/O accounting).
func (fs *FS) Device() *disk.Device { return fs.dev }

// FlushCaches empties all caches without losing data (the buffer cache is
// write-through).  Experiments call this to construct a cold-cache state.
func (fs *FS) FlushCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bc.flush()
	fs.ic.flush()
	fs.dnlc.flush()
}

// SetCachesEnabled enables or disables all caches at once; disabling also
// flushes.
func (fs *FS) SetCachesEnabled(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bc.setEnabled(on)
	fs.ic.setEnabled(on)
	fs.dnlc.setEnabled(on)
}

// CacheStats reports hit/miss counters for the three caches.
type CacheStats struct {
	BufferHits, BufferMisses uint64
	InodeHits, InodeMisses   uint64
	NameHits, NameMisses     uint64
}

// CacheStats returns a snapshot of cache counters.
func (fs *FS) CacheStats() CacheStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return CacheStats{
		BufferHits: fs.bc.hits, BufferMisses: fs.bc.misses,
		InodeHits: fs.ic.hits, InodeMisses: fs.ic.misses,
		NameHits: fs.dnlc.hits, NameMisses: fs.dnlc.misses,
	}
}

func (fs *FS) tick() uint64 {
	fs.clock++
	return fs.clock
}

func validName(name string) error {
	if name == "" || name == "." || name == ".." {
		return ErrInvalidName
	}
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return ErrInvalidName
		}
	}
	return nil
}
