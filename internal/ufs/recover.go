package ufs

// Mount-time crash recovery.  The allocator write orderings guarantee that
// a crash can only leak resources or leave counters stale — never corrupt
// reachable data:
//
//   - ialloc sets the inode bitmap bit before initializing the inode, so a
//     crash between the two leaves an allocated-but-free ghost bit;
//   - balloc grabs the block bitmap bit before the block is attached to any
//     inode, so a crash leaves allocated-but-unreferenced blocks;
//   - the remove/free paths detach directory entries before releasing the
//     inode and zero the inode before clearing its bitmap bit, so a crash
//     leaves unreachable inodes or ghost bits — never a live entry naming
//     recycled storage.
//
// recoverLocked undoes exactly those leaks, in the same order fsck would:
// drop directory entries that point at free inodes, reclaim inodes
// unreachable from the root, reset link counts to the surviving reference
// counts, and rebuild both allocation bitmaps from the inode table.  After
// it runs, Check reports a clean volume.
func (fs *FS) recoverLocked() error {
	// Pass 1: walk the tree from the root, dropping entries that name free
	// inodes and collecting reference counts and reachability.
	linkRefs := make(map[Ino]uint16)
	reachable := make(map[Ino]bool)
	var walk func(dir Ino) error
	walk = func(dir Ino) error {
		if reachable[dir] {
			return nil
		}
		reachable[dir] = true
		type ent struct {
			name string
			ino  Ino
		}
		var ents []ent
		if err := fs.dirScanLocked(dir, func(_ uint64, ino Ino, name string) bool {
			ents = append(ents, ent{name, ino})
			return false
		}); err != nil {
			return err
		}
		for _, e := range ents {
			din, err := fs.ic.get(e.ino)
			if err != nil {
				return err
			}
			if din.Type == TypeFree {
				if _, err := fs.dirRemoveLocked(dir, e.name); err != nil {
					return err
				}
				continue
			}
			switch e.name {
			case ".":
				linkRefs[dir]++
			case "..":
				linkRefs[e.ino]++
			default:
				linkRefs[e.ino]++
				if din.Type == TypeDir {
					if err := walk(e.ino); err != nil {
						return err
					}
				} else {
					reachable[e.ino] = true
				}
			}
		}
		return nil
	}
	if err := walk(rootIno); err != nil {
		return err
	}

	// Pass 2: reclaim unreachable inodes, reset stale link counts, and
	// rebuild the inode bitmap from the table.
	for i := uint32(1); i < fs.sb.NInodes; i++ {
		ino := Ino(i)
		din, err := fs.ic.get(ino)
		if err != nil {
			return err
		}
		if din.Type != TypeFree {
			if !reachable[ino] {
				if err := fs.writeInodeLocked(ino, dinode{}); err != nil {
					return err
				}
				fs.ic.drop(ino)
				din = dinode{}
			} else if din.Nlink != linkRefs[ino] {
				din.Nlink = linkRefs[ino]
				if err := fs.writeInodeLocked(ino, din); err != nil {
					return err
				}
			}
		}
		want := din.Type != TypeFree
		used, err := fs.bmapTest(inoBitmap, i)
		if err != nil {
			return err
		}
		if used != want {
			if err := fs.bmapSet(inoBitmap, i, want); err != nil {
				return err
			}
		}
	}

	// Pass 3: rebuild the block bitmap from the surviving inodes' block
	// trees (leaked blocks lose their bits; blocks owned by an inode that
	// was mid-free at the crash get them back).
	refs := make(map[uint32]bool)
	for i := uint32(1); i < fs.sb.NInodes; i++ {
		din, err := fs.ic.get(Ino(i))
		if err != nil {
			return err
		}
		if din.Type == TypeFree {
			continue
		}
		if err := fs.walkBlocks(&din, func(bn uint32) { refs[bn] = true }); err != nil {
			return err
		}
	}
	for bn := fs.sb.DataStart; bn < fs.sb.NBlocks; bn++ {
		used, err := fs.bmapTest(blkBitmap, bn)
		if err != nil {
			return err
		}
		if used != refs[bn] {
			if err := fs.bmapSet(blkBitmap, bn, refs[bn]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Recover runs crash recovery on a mounted filesystem (see recoverLocked).
// Mount invokes it automatically; it is exported so tests can re-run it.
func (fs *FS) Recover() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.recoverLocked()
}
