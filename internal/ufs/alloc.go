package ufs

import "fmt"

// Bitmap selector for bmapSet/bmapTest.
type bitmapKind int

const (
	inoBitmap bitmapKind = iota
	blkBitmap
)

func (fs *FS) bitmapLoc(kind bitmapKind, idx uint32) (bn uint32, byteOff int, mask byte, err error) {
	var start, length, limit uint32
	switch kind {
	case inoBitmap:
		start, length, limit = fs.sb.InoBmapStart, fs.sb.InoBmapLen, fs.sb.NInodes
	case blkBitmap:
		start, length, limit = fs.sb.BlkBmapStart, fs.sb.BlkBmapLen, fs.sb.NBlocks
	}
	if idx >= limit {
		return 0, 0, 0, fmt.Errorf("ufs: bitmap index %d out of range %d", idx, limit)
	}
	bn = start + idx/(BlockSize*8)
	if bn >= start+length {
		return 0, 0, 0, fmt.Errorf("ufs: bitmap block overflow")
	}
	byteOff = int(idx % (BlockSize * 8) / 8)
	mask = 1 << (idx % 8)
	return bn, byteOff, mask, nil
}

func (fs *FS) bmapSet(kind bitmapKind, idx uint32, on bool) error {
	bn, off, mask, err := fs.bitmapLoc(kind, idx)
	if err != nil {
		return err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return err
	}
	if on {
		blk[off] |= mask
	} else {
		blk[off] &^= mask
	}
	return fs.bc.write(bn, blk)
}

func (fs *FS) bmapTest(kind bitmapKind, idx uint32) (bool, error) {
	bn, off, mask, err := fs.bitmapLoc(kind, idx)
	if err != nil {
		return false, err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return false, err
	}
	return blk[off]&mask != 0, nil
}

// ballocLocked allocates a data block using a next-fit rotor, zero-fills it
// and returns its number.
func (fs *FS) ballocLocked() (uint32, error) {
	n := fs.sb.NBlocks
	start := fs.rotor
	if start < fs.sb.DataStart || start >= n {
		start = fs.sb.DataStart
	}
	for i := uint32(0); i < n-fs.sb.DataStart; i++ {
		bn := fs.sb.DataStart + (start-fs.sb.DataStart+i)%(n-fs.sb.DataStart)
		used, err := fs.bmapTest(blkBitmap, bn)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := fs.bmapSet(blkBitmap, bn, true); err != nil {
				return 0, err
			}
			// Zero the block so stale contents never leak into new files.
			if err := fs.bc.write(bn, make([]byte, BlockSize)); err != nil {
				return 0, err
			}
			fs.rotor = bn + 1
			return bn, nil
		}
	}
	return 0, ErrNoSpace
}

// bfreeLocked releases a data block.
func (fs *FS) bfreeLocked(bn uint32) error {
	if bn < fs.sb.DataStart || bn >= fs.sb.NBlocks {
		return fmt.Errorf("ufs: bfree of non-data block %d", bn)
	}
	used, err := fs.bmapTest(blkBitmap, bn)
	if err != nil {
		return err
	}
	if !used {
		return fmt.Errorf("ufs: double free of block %d", bn)
	}
	fs.bc.evict(bn)
	return fs.bmapSet(blkBitmap, bn, false)
}

// iallocLocked allocates an inode of the given type with nlink 0.
func (fs *FS) iallocLocked(t FileType) (Ino, error) {
	for i := uint32(1); i < fs.sb.NInodes; i++ {
		used, err := fs.bmapTest(inoBitmap, i)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := fs.bmapSet(inoBitmap, i, true); err != nil {
				return 0, err
			}
			now := fs.tick()
			din := dinode{Type: t, Ctime: now, Mtime: now}
			if err := fs.writeInodeLocked(Ino(i), din); err != nil {
				return 0, err
			}
			return Ino(i), nil
		}
	}
	return 0, ErrNoInodes
}

// ifreeLocked releases an inode and all its data blocks.
func (fs *FS) ifreeLocked(ino Ino) error {
	if err := fs.itruncateLocked(ino, 0); err != nil {
		return err
	}
	if err := fs.writeInodeLocked(ino, dinode{}); err != nil {
		return err
	}
	fs.ic.drop(ino)
	return fs.bmapSet(inoBitmap, uint32(ino), false)
}
