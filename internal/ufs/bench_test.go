package ufs

import (
	"fmt"
	"testing"

	"repro/internal/disk"
)

func benchFS(b *testing.B) *FS {
	b.Helper()
	fs, err := Mkfs(disk.New(65536), 16384, nil)
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

func BenchmarkCreate(b *testing.B) {
	fs := benchFS(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("f%08d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite4K(b *testing.B) {
	fs := benchFS(b)
	ino, err := fs.Create(fs.Root(), "f")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.WriteAt(ino, buf, int64(i%64)*BlockSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead4KWarm(b *testing.B) {
	fs := benchFS(b)
	ino, _ := fs.Create(fs.Root(), "f")
	if err := fs.WriteFile(ino, make([]byte, 64*BlockSize)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadAt(ino, buf, int64(i%64)*BlockSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupWarm(b *testing.B) {
	fs := benchFS(b)
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("f%03d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Lookup(fs.Root(), "f050"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupColdCaches(b *testing.B) {
	fs := benchFS(b)
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("f%03d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.FlushCaches()
		if _, err := fs.Lookup(fs.Root(), "f050"); err != nil {
			b.Fatal(err)
		}
	}
}
