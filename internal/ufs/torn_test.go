package ufs

import (
	"fmt"
	"testing"

	"repro/internal/disk"
)

// tornWorkload is a deterministic mix of namespace and data mutations; each
// op tolerates the disk dying mid-flight (that is the point).
func tornWorkload(fs *FS) {
	dir, err := fs.Mkdir(fs.Root(), "d")
	if err != nil {
		dir = fs.Root()
	}
	for i := 0; i < 4; i++ {
		if ino, err := fs.Create(fs.Root(), fmt.Sprintf("f%d", i)); err == nil {
			_ = fs.WriteFile(ino, []byte(fmt.Sprintf("content %d spanning a bit of data", i)))
		}
		if ino, err := fs.Create(dir, fmt.Sprintf("g%d", i)); err == nil {
			_ = fs.WriteFile(ino, make([]byte, 5000)) // 2 blocks
		}
		if i > 0 {
			_ = fs.Rename(fs.Root(), fmt.Sprintf("f%d", i-1), dir, fmt.Sprintf("r%d", i-1))
		}
	}
	_ = fs.Remove(dir, "g0")
}

// TestTornWriteAtEveryOffset crashes the disk at every write of the
// workload, persisting only a 100-byte prefix of the torn block (a power
// failure mid-sector-train), then remounts.  Recovery must always produce a
// volume Check calls clean, and a file committed before the window must
// survive untouched.  The sweep ends when the countdown outlives the
// workload.
func TestTornWriteAtEveryOffset(t *testing.T) {
	const keep = 100
	const maxSweep = 2000
	crashAfter := 0
	for ; crashAfter <= maxSweep; crashAfter++ {
		dev := disk.New(512)
		fs, err := Mkfs(dev, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		ino, err := fs.Create(fs.Root(), "keep")
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, []byte("committed before the window")); err != nil {
			t.Fatal(err)
		}

		dev.FaultAfterWritesTorn(crashAfter, keep)
		tornWorkload(fs)
		fired := dev.Faulted()
		dev.ClearFault()

		fs2, err := Mount(dev, nil)
		if err != nil {
			t.Fatalf("crashAfter=%d: remount: %v", crashAfter, err)
		}
		if problems, err := fs2.Check(); err != nil {
			t.Fatalf("crashAfter=%d: check: %v", crashAfter, err)
		} else if len(problems) != 0 {
			t.Fatalf("crashAfter=%d: torn write left problems: %v", crashAfter, problems)
		}
		data, err := fs2.ReadFile(ino)
		if err != nil || string(data) != "committed before the window" {
			t.Fatalf("crashAfter=%d: pre-window file damaged: %q, %v", crashAfter, data, err)
		}
		if fired && dev.Stats().TornWrites == 0 {
			t.Fatalf("crashAfter=%d: fault fired but no torn write recorded", crashAfter)
		}
		if !fired {
			break
		}
	}
	if crashAfter > maxSweep {
		t.Fatalf("sweep did not terminate within %d offsets", maxSweep)
	}
	if crashAfter < 10 {
		t.Fatalf("workload performed only %d writes; sweep is vacuous", crashAfter)
	}
	t.Logf("swept %d torn-write offsets", crashAfter)
}
