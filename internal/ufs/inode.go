package ufs

import (
	"encoding/binary"
	"fmt"
)

// dinode is the on-disk inode: 128 bytes.
//
//	off  0  Type    uint16
//	off  2  Nlink   uint16
//	off  4  Mode    uint16 (permissions, informational)
//	off  6  pad     uint16
//	off  8  Size    uint64
//	off 16  Mtime   uint64 (logical clock)
//	off 24  Ctime   uint64 (logical clock)
//	off 32  Direct  [10]uint32
//	off 72  Indirect  uint32
//	off 76  DblIndirect uint32
//	off 80..127 reserved
type dinode struct {
	Type        FileType
	Nlink       uint16
	Mode        uint16
	Size        uint64
	Mtime       uint64
	Ctime       uint64
	Direct      [NDirect]uint32
	Indirect    uint32
	DblIndirect uint32
}

func (d *dinode) encode(p []byte) {
	binary.BigEndian.PutUint16(p[0:], uint16(d.Type))
	binary.BigEndian.PutUint16(p[2:], d.Nlink)
	binary.BigEndian.PutUint16(p[4:], d.Mode)
	binary.BigEndian.PutUint64(p[8:], d.Size)
	binary.BigEndian.PutUint64(p[16:], d.Mtime)
	binary.BigEndian.PutUint64(p[24:], d.Ctime)
	for i := 0; i < NDirect; i++ {
		binary.BigEndian.PutUint32(p[32+4*i:], d.Direct[i])
	}
	binary.BigEndian.PutUint32(p[72:], d.Indirect)
	binary.BigEndian.PutUint32(p[76:], d.DblIndirect)
}

func (d *dinode) decode(p []byte) {
	d.Type = FileType(binary.BigEndian.Uint16(p[0:]))
	d.Nlink = binary.BigEndian.Uint16(p[2:])
	d.Mode = binary.BigEndian.Uint16(p[4:])
	d.Size = binary.BigEndian.Uint64(p[8:])
	d.Mtime = binary.BigEndian.Uint64(p[16:])
	d.Ctime = binary.BigEndian.Uint64(p[24:])
	for i := 0; i < NDirect; i++ {
		d.Direct[i] = binary.BigEndian.Uint32(p[32+4*i:])
	}
	d.Indirect = binary.BigEndian.Uint32(p[72:])
	d.DblIndirect = binary.BigEndian.Uint32(p[76:])
}

func (fs *FS) inodeLoc(ino Ino) (bn uint32, off int, err error) {
	if ino == 0 || uint32(ino) >= fs.sb.NInodes {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	bn = fs.sb.ITableStart + uint32(ino)/InodesPerBlock
	off = int(uint32(ino)%InodesPerBlock) * InodeSize
	return bn, off, nil
}

// readInodeFromDisk bypasses the inode cache (the cache itself calls it).
func (fs *FS) readInodeFromDisk(ino Ino) (dinode, error) {
	bn, off, err := fs.inodeLoc(ino)
	if err != nil {
		return dinode{}, err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return dinode{}, err
	}
	var din dinode
	din.decode(blk[off : off+InodeSize])
	return din, nil
}

// readInodeLocked returns the inode, failing if it is free.
func (fs *FS) readInodeLocked(ino Ino) (dinode, error) {
	din, err := fs.ic.get(ino)
	if err != nil {
		return dinode{}, err
	}
	if din.Type == TypeFree {
		return dinode{}, fmt.Errorf("%w: inode %d is free", ErrBadInode, ino)
	}
	return din, nil
}

// writeInodeLocked persists the inode and refreshes the cache.
func (fs *FS) writeInodeLocked(ino Ino, din dinode) error {
	bn, off, err := fs.inodeLoc(ino)
	if err != nil {
		return err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return err
	}
	din.encode(blk[off : off+InodeSize])
	if err := fs.bc.write(bn, blk); err != nil {
		return err
	}
	fs.ic.put(ino, din)
	return nil
}

// blockmapLocked translates a file-relative block index to a device block.
// When alloc is true, missing blocks (including indirect blocks) are
// allocated; the caller must persist din afterwards since Direct/Indirect
// pointers may change.  Returns 0 (a hole) when alloc is false and the
// block is unmapped.
func (fs *FS) blockmapLocked(din *dinode, fbn uint64, alloc bool) (uint32, error) {
	if fbn >= MaxFileBlocks {
		return 0, ErrFileTooBig
	}
	// Direct.
	if fbn < NDirect {
		bn := din.Direct[fbn]
		if bn == 0 && alloc {
			var err error
			bn, err = fs.ballocLocked()
			if err != nil {
				return 0, err
			}
			din.Direct[fbn] = bn
		}
		return bn, nil
	}
	fbn -= NDirect
	// Single indirect.
	if fbn < PtrsPerBlock {
		if din.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			bn, err := fs.ballocLocked()
			if err != nil {
				return 0, err
			}
			din.Indirect = bn
		}
		return fs.indirectSlot(din.Indirect, uint32(fbn), alloc)
	}
	fbn -= PtrsPerBlock
	// Double indirect.
	if din.DblIndirect == 0 {
		if !alloc {
			return 0, nil
		}
		bn, err := fs.ballocLocked()
		if err != nil {
			return 0, err
		}
		din.DblIndirect = bn
	}
	outer := uint32(fbn / PtrsPerBlock)
	inner := uint32(fbn % PtrsPerBlock)
	mid, err := fs.indirectSlot(din.DblIndirect, outer, alloc)
	if err != nil || mid == 0 {
		return 0, err
	}
	return fs.indirectSlot(mid, inner, alloc)
}

// indirectSlot reads slot idx of indirect block ibn, allocating a fresh
// block into the slot when alloc is true and the slot is empty.
func (fs *FS) indirectSlot(ibn, idx uint32, alloc bool) (uint32, error) {
	blk, err := fs.bc.read(ibn)
	if err != nil {
		return 0, err
	}
	bn := binary.BigEndian.Uint32(blk[4*idx:])
	if bn == 0 && alloc {
		bn, err = fs.ballocLocked()
		if err != nil {
			return 0, err
		}
		binary.BigEndian.PutUint32(blk[4*idx:], bn)
		if err := fs.bc.write(ibn, blk); err != nil {
			return 0, err
		}
	}
	return bn, nil
}

// itruncateLocked shrinks or grows (sparsely) the file to size bytes,
// freeing blocks past the new end.
func (fs *FS) itruncateLocked(ino Ino, size uint64) error {
	din, err := fs.ic.get(ino)
	if err != nil {
		return err
	}
	if size >= din.Size {
		if size == din.Size {
			return nil
		}
		din.Size = size
		din.Mtime = fs.tick()
		return fs.writeInodeLocked(ino, din)
	}
	keep := (size + BlockSize - 1) / BlockSize // file blocks to keep
	// Free direct blocks.
	for i := keep; i < NDirect; i++ {
		if din.Direct[i] != 0 {
			if err := fs.bfreeLocked(din.Direct[i]); err != nil {
				return err
			}
			din.Direct[i] = 0
		}
	}
	// Free single-indirect range.
	if din.Indirect != 0 {
		var start uint64
		if keep > NDirect {
			start = keep - NDirect
		}
		empty, err := fs.freeIndirectRange(din.Indirect, uint32(min64(start, PtrsPerBlock)))
		if err != nil {
			return err
		}
		if empty && start == 0 {
			if err := fs.bfreeLocked(din.Indirect); err != nil {
				return err
			}
			din.Indirect = 0
		}
	}
	// Free double-indirect range.
	if din.DblIndirect != 0 {
		var start uint64
		if keep > NDirect+PtrsPerBlock {
			start = keep - NDirect - PtrsPerBlock
		}
		blk, err := fs.bc.read(din.DblIndirect)
		if err != nil {
			return err
		}
		changed := false
		allEmpty := true
		for o := uint32(0); o < PtrsPerBlock; o++ {
			mid := binary.BigEndian.Uint32(blk[4*o:])
			if mid == 0 {
				continue
			}
			lo := uint64(o) * PtrsPerBlock
			hi := lo + PtrsPerBlock
			switch {
			case start >= hi:
				allEmpty = false // fully kept
			case start <= lo:
				// Fully freed mid-block.
				if _, err := fs.freeIndirectRange(mid, 0); err != nil {
					return err
				}
				if err := fs.bfreeLocked(mid); err != nil {
					return err
				}
				binary.BigEndian.PutUint32(blk[4*o:], 0)
				changed = true
			default:
				empty, err := fs.freeIndirectRange(mid, uint32(start-lo))
				if err != nil {
					return err
				}
				if empty {
					if err := fs.bfreeLocked(mid); err != nil {
						return err
					}
					binary.BigEndian.PutUint32(blk[4*o:], 0)
					changed = true
				} else {
					allEmpty = false
				}
			}
		}
		if changed {
			if err := fs.bc.write(din.DblIndirect, blk); err != nil {
				return err
			}
		}
		if allEmpty && start == 0 {
			if err := fs.bfreeLocked(din.DblIndirect); err != nil {
				return err
			}
			din.DblIndirect = 0
		}
	}
	// Zero the tail of the partial last block so stale bytes never
	// resurface if the file is later extended past the new size.
	if tail := size % BlockSize; tail != 0 {
		bn, err := fs.blockmapLocked(&din, size/BlockSize, false)
		if err != nil {
			return err
		}
		if bn != 0 {
			blk, err := fs.bc.read(bn)
			if err != nil {
				return err
			}
			for i := tail; i < BlockSize; i++ {
				blk[i] = 0
			}
			if err := fs.bc.write(bn, blk); err != nil {
				return err
			}
		}
	}
	din.Size = size
	din.Mtime = fs.tick()
	return fs.writeInodeLocked(ino, din)
}

// freeIndirectRange frees slots [start, PtrsPerBlock) of an indirect block,
// reporting whether the block is now entirely empty.
func (fs *FS) freeIndirectRange(ibn, start uint32) (empty bool, err error) {
	blk, err := fs.bc.read(ibn)
	if err != nil {
		return false, err
	}
	changed := false
	empty = true
	for i := uint32(0); i < PtrsPerBlock; i++ {
		bn := binary.BigEndian.Uint32(blk[4*i:])
		if bn == 0 {
			continue
		}
		if i >= start {
			if err := fs.bfreeLocked(bn); err != nil {
				return false, err
			}
			binary.BigEndian.PutUint32(blk[4*i:], 0)
			changed = true
		} else {
			empty = false
		}
	}
	if changed {
		if err := fs.bc.write(ibn, blk); err != nil {
			return false, err
		}
	}
	return empty, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
