package ufs

import "encoding/binary"

// Dirent is one directory entry as returned by Readdir.
type Dirent struct {
	Name string
	Ino  Ino
}

// Directory slot layout (dirSlotSize bytes):
//
//	off 0  ino      uint32 (0 = free slot)
//	off 4  nameLen  uint8
//	off 5  name     [MaxNameLen]byte
//
// Slots never span blocks (dirSlotsPerBlock per block; the block tail is
// unused), so one directory data page read resolves all names in it.

func decodeSlot(p []byte) (Ino, string) {
	ino := Ino(binary.BigEndian.Uint32(p))
	if ino == 0 {
		return 0, ""
	}
	n := int(p[4])
	return ino, string(p[5 : 5+n])
}

func encodeSlot(p []byte, ino Ino, name string) {
	binary.BigEndian.PutUint32(p, uint32(ino))
	p[4] = byte(len(name))
	copy(p[5:], name)
	// Zero the remainder so stale names never resurface.
	for i := 5 + len(name); i < dirSlotSize; i++ {
		p[i] = 0
	}
}

// slotAddr converts a slot index to (file block, in-block offset).
func slotAddr(idx uint64) (fbn uint64, off int) {
	return idx / dirSlotsPerBlock, int(idx%dirSlotsPerBlock) * dirSlotSize
}

// dirInitLocked writes "." and ".." into a fresh directory.
func (fs *FS) dirInitLocked(dir, parent Ino) error {
	din, err := fs.readInodeLocked(dir)
	if err != nil {
		return err
	}
	if din.Type != TypeDir {
		return ErrNotDir
	}
	blk := make([]byte, BlockSize)
	encodeSlot(blk[0:], dir, ".")
	encodeSlot(blk[dirSlotSize:], parent, "..")
	bn, err := fs.blockmapLocked(&din, 0, true)
	if err != nil {
		return err
	}
	if err := fs.bc.write(bn, blk); err != nil {
		return err
	}
	din.Size = 2 * dirSlotSize
	din.Nlink = 2 // "." and the parent's entry (counted when linked in)
	din.Mtime = fs.tick()
	return fs.writeInodeLocked(dir, din)
}

// dirScanLocked iterates allocated slots, calling fn with (slotIndex, ino,
// name); fn returns true to stop early.
func (fs *FS) dirScanLocked(dir Ino, fn func(idx uint64, ino Ino, name string) bool) error {
	din, err := fs.readInodeLocked(dir)
	if err != nil {
		return err
	}
	if din.Type != TypeDir {
		return ErrNotDir
	}
	nSlots := din.Size / dirSlotSize
	for fbn := uint64(0); fbn*dirSlotsPerBlock < nSlots; fbn++ {
		bn, err := fs.blockmapLocked(&din, fbn, false)
		if err != nil {
			return err
		}
		var blk []byte
		if bn != 0 {
			blk, err = fs.bc.read(bn)
			if err != nil {
				return err
			}
		} else {
			blk = make([]byte, BlockSize)
		}
		for s := 0; s < dirSlotsPerBlock; s++ {
			idx := fbn*dirSlotsPerBlock + uint64(s)
			if idx >= nSlots {
				return nil
			}
			ino, name := decodeSlot(blk[s*dirSlotSize:])
			if ino == 0 {
				continue
			}
			if fn(idx, ino, name) {
				return nil
			}
		}
	}
	return nil
}

// dirLookupLocked finds name in dir (".", ".." included), using the DNLC.
func (fs *FS) dirLookupLocked(dir Ino, name string) (Ino, error) {
	if child, ok := fs.dnlc.get(dir, name); ok {
		return child, nil
	}
	var found Ino
	err := fs.dirScanLocked(dir, func(_ uint64, ino Ino, n string) bool {
		if n == name {
			found = ino
			return true
		}
		return false
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, ErrNotExist
	}
	fs.dnlc.put(dir, name, found)
	return found, nil
}

// dirAddLocked inserts an entry, reusing a free slot or extending the
// directory.  The caller has verified that name does not already exist.
func (fs *FS) dirAddLocked(dir Ino, name string, child Ino) error {
	din, err := fs.readInodeLocked(dir)
	if err != nil {
		return err
	}
	nSlots := din.Size / dirSlotSize
	freeIdx := uint64(1<<63 - 1)
	foundFree := false
	err = func() error {
		for fbn := uint64(0); fbn*dirSlotsPerBlock < nSlots; fbn++ {
			bn, err := fs.blockmapLocked(&din, fbn, false)
			if err != nil {
				return err
			}
			if bn == 0 {
				freeIdx = fbn * dirSlotsPerBlock
				foundFree = true
				return nil
			}
			blk, err := fs.bc.read(bn)
			if err != nil {
				return err
			}
			for s := 0; s < dirSlotsPerBlock; s++ {
				idx := fbn*dirSlotsPerBlock + uint64(s)
				if idx >= nSlots {
					return nil
				}
				if ino, _ := decodeSlot(blk[s*dirSlotSize:]); ino == 0 {
					freeIdx = idx
					foundFree = true
					return nil
				}
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	idx := nSlots
	if foundFree {
		idx = freeIdx
	}
	fbn, off := slotAddr(idx)
	bn, err := fs.blockmapLocked(&din, fbn, true)
	if err != nil {
		return err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return err
	}
	encodeSlot(blk[off:], child, name)
	if err := fs.bc.write(bn, blk); err != nil {
		return err
	}
	if end := (idx + 1) * dirSlotSize; end > din.Size {
		din.Size = end
	}
	din.Mtime = fs.tick()
	if err := fs.writeInodeLocked(dir, din); err != nil {
		return err
	}
	fs.dnlc.put(dir, name, child)
	return nil
}

// dirRemoveLocked deletes the entry for name, returning the child it named.
func (fs *FS) dirRemoveLocked(dir Ino, name string) (Ino, error) {
	din, err := fs.readInodeLocked(dir)
	if err != nil {
		return 0, err
	}
	var at uint64
	var child Ino
	err = fs.dirScanLocked(dir, func(idx uint64, ino Ino, n string) bool {
		if n == name {
			at, child = idx, ino
			return true
		}
		return false
	})
	if err != nil {
		return 0, err
	}
	if child == 0 {
		return 0, ErrNotExist
	}
	fbn, off := slotAddr(at)
	bn, err := fs.blockmapLocked(&din, fbn, false)
	if err != nil {
		return 0, err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return 0, err
	}
	encodeSlot(blk[off:], 0, "")
	if err := fs.bc.write(bn, blk); err != nil {
		return 0, err
	}
	din.Mtime = fs.tick()
	if err := fs.writeInodeLocked(dir, din); err != nil {
		return 0, err
	}
	fs.dnlc.drop(dir, name)
	return child, nil
}

// dirEmptyLocked reports whether dir contains only "." and "..".
func (fs *FS) dirEmptyLocked(dir Ino) (bool, error) {
	empty := true
	err := fs.dirScanLocked(dir, func(_ uint64, _ Ino, name string) bool {
		if name != "." && name != ".." {
			empty = false
			return true
		}
		return false
	})
	return empty, err
}

// Lookup resolves name within directory dir.
func (fs *FS) Lookup(dir Ino, name string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if name == "." {
		return dir, nil
	}
	if len(name) > MaxNameLen {
		return 0, ErrNameTooLong
	}
	return fs.dirLookupLocked(dir, name)
}

// Create makes a new regular file named name in dir.
func (fs *FS) Create(dir Ino, name string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(name); err != nil {
		return 0, err
	}
	ddin, err := fs.readInodeLocked(dir)
	if err != nil {
		return 0, err
	}
	if ddin.Type != TypeDir {
		return 0, ErrNotDir
	}
	if _, err := fs.dirLookupLocked(dir, name); err == nil {
		return 0, ErrExist
	} else if err != ErrNotExist {
		return 0, err
	}
	ino, err := fs.iallocLocked(TypeFile)
	if err != nil {
		return 0, err
	}
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return 0, err
	}
	din.Nlink = 1
	if err := fs.writeInodeLocked(ino, din); err != nil {
		return 0, err
	}
	if err := fs.dirAddLocked(dir, name, ino); err != nil {
		_ = fs.ifreeLocked(ino)
		return 0, err
	}
	return ino, nil
}

// Mkdir makes a new directory named name in dir.
func (fs *FS) Mkdir(dir Ino, name string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(name); err != nil {
		return 0, err
	}
	ddin, err := fs.readInodeLocked(dir)
	if err != nil {
		return 0, err
	}
	if ddin.Type != TypeDir {
		return 0, ErrNotDir
	}
	if _, err := fs.dirLookupLocked(dir, name); err == nil {
		return 0, ErrExist
	} else if err != ErrNotExist {
		return 0, err
	}
	ino, err := fs.iallocLocked(TypeDir)
	if err != nil {
		return 0, err
	}
	if err := fs.dirInitLocked(ino, dir); err != nil {
		_ = fs.ifreeLocked(ino)
		return 0, err
	}
	if err := fs.dirAddLocked(dir, name, ino); err != nil {
		_ = fs.ifreeLocked(ino)
		return 0, err
	}
	// Parent gains a link via the child's "..".
	ddin, err = fs.readInodeLocked(dir)
	if err != nil {
		return 0, err
	}
	ddin.Nlink++
	if err := fs.writeInodeLocked(dir, ddin); err != nil {
		return 0, err
	}
	return ino, nil
}

// Link creates a hard link to target as name in dir.  Hard links to
// directories are rejected, as in Unix.
func (fs *FS) Link(dir Ino, name string, target Ino) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(name); err != nil {
		return err
	}
	tdin, err := fs.readInodeLocked(target)
	if err != nil {
		return err
	}
	if tdin.Type == TypeDir {
		return ErrLinkedDir
	}
	ddin, err := fs.readInodeLocked(dir)
	if err != nil {
		return err
	}
	if ddin.Type != TypeDir {
		return ErrNotDir
	}
	if _, err := fs.dirLookupLocked(dir, name); err == nil {
		return ErrExist
	} else if err != ErrNotExist {
		return err
	}
	if err := fs.dirAddLocked(dir, name, target); err != nil {
		return err
	}
	tdin.Nlink++
	tdin.Ctime = fs.tick()
	return fs.writeInodeLocked(target, tdin)
}

// Remove unlinks a non-directory name; when the link count drops to zero
// the inode and its blocks are freed.
func (fs *FS) Remove(dir Ino, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(name); err != nil {
		return err
	}
	child, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	cdin, err := fs.readInodeLocked(child)
	if err != nil {
		return err
	}
	if cdin.Type == TypeDir {
		return ErrIsDir
	}
	if _, err := fs.dirRemoveLocked(dir, name); err != nil {
		return err
	}
	cdin.Nlink--
	cdin.Ctime = fs.tick()
	if cdin.Nlink == 0 {
		return fs.ifreeLocked(child)
	}
	return fs.writeInodeLocked(child, cdin)
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(dir Ino, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(name); err != nil {
		return err
	}
	child, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	cdin, err := fs.readInodeLocked(child)
	if err != nil {
		return err
	}
	if cdin.Type != TypeDir {
		return ErrNotDir
	}
	empty, err := fs.dirEmptyLocked(child)
	if err != nil {
		return err
	}
	if !empty {
		return ErrNotEmpty
	}
	if _, err := fs.dirRemoveLocked(dir, name); err != nil {
		return err
	}
	if err := fs.ifreeLocked(child); err != nil {
		return err
	}
	fs.dnlc.dropDir(child)
	// Parent loses the child's ".." link.
	ddin, err := fs.readInodeLocked(dir)
	if err != nil {
		return err
	}
	ddin.Nlink--
	ddin.Mtime = fs.tick()
	return fs.writeInodeLocked(dir, ddin)
}

// Rename moves sdir/sname to ddir/dname.  A non-directory destination is
// replaced atomically; directory destinations must not exist.
func (fs *FS) Rename(sdir Ino, sname string, ddir Ino, dname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(sname); err != nil {
		return err
	}
	if err := validName(dname); err != nil {
		return err
	}
	child, err := fs.dirLookupLocked(sdir, sname)
	if err != nil {
		return err
	}
	if sdir == ddir && sname == dname {
		return nil
	}
	cdin, err := fs.readInodeLocked(child)
	if err != nil {
		return err
	}
	// Moving a directory under itself would orphan the subtree.
	if cdin.Type == TypeDir {
		if child == ddir {
			return ErrDirLoop
		}
		for p := ddir; p != rootIno; {
			up, err := fs.dirLookupLocked(p, "..")
			if err != nil {
				return err
			}
			if up == child {
				return ErrDirLoop
			}
			if up == p {
				break
			}
			p = up
		}
	}
	// Handle an existing destination.
	if old, err := fs.dirLookupLocked(ddir, dname); err == nil {
		if old == child {
			// Same inode under both names: just drop the source entry.
			if _, err := fs.dirRemoveLocked(sdir, sname); err != nil {
				return err
			}
			odin, err := fs.readInodeLocked(old)
			if err != nil {
				return err
			}
			odin.Nlink--
			return fs.writeInodeLocked(old, odin)
		}
		odin, err := fs.readInodeLocked(old)
		if err != nil {
			return err
		}
		if odin.Type == TypeDir {
			return ErrExist
		}
		if cdin.Type == TypeDir {
			return ErrNotDir
		}
		if _, err := fs.dirRemoveLocked(ddir, dname); err != nil {
			return err
		}
		odin.Nlink--
		if odin.Nlink == 0 {
			if err := fs.ifreeLocked(old); err != nil {
				return err
			}
		} else if err := fs.writeInodeLocked(old, odin); err != nil {
			return err
		}
	} else if err != ErrNotExist {
		return err
	}
	// Keep nlink >= on-disk reference count at every crash point: bump
	// before adding the second name, drop only after the first is gone.
	// Otherwise recovery code removing one name would free an inode the
	// other name still references.
	cdin, err = fs.readInodeLocked(child)
	if err != nil {
		return err
	}
	cdin.Nlink++
	if err := fs.writeInodeLocked(child, cdin); err != nil {
		return err
	}
	if err := fs.dirAddLocked(ddir, dname, child); err != nil {
		return err
	}
	if _, err := fs.dirRemoveLocked(sdir, sname); err != nil {
		return err
	}
	cdin, err = fs.readInodeLocked(child)
	if err != nil {
		return err
	}
	cdin.Nlink--
	if err := fs.writeInodeLocked(child, cdin); err != nil {
		return err
	}
	// Fix ".." and parent link counts when a directory changes parents.
	if cdin.Type == TypeDir && sdir != ddir {
		if err := fs.dirSetDotDotLocked(child, ddir); err != nil {
			return err
		}
		sdin, err := fs.readInodeLocked(sdir)
		if err != nil {
			return err
		}
		sdin.Nlink--
		if err := fs.writeInodeLocked(sdir, sdin); err != nil {
			return err
		}
		ddin, err := fs.readInodeLocked(ddir)
		if err != nil {
			return err
		}
		ddin.Nlink++
		if err := fs.writeInodeLocked(ddir, ddin); err != nil {
			return err
		}
	}
	return nil
}

// dirSetDotDotLocked repoints the ".." entry of dir at parent.
func (fs *FS) dirSetDotDotLocked(dir, parent Ino) error {
	din, err := fs.readInodeLocked(dir)
	if err != nil {
		return err
	}
	bn, err := fs.blockmapLocked(&din, 0, false)
	if err != nil {
		return err
	}
	blk, err := fs.bc.read(bn)
	if err != nil {
		return err
	}
	encodeSlot(blk[dirSlotSize:], parent, "..")
	if err := fs.bc.write(bn, blk); err != nil {
		return err
	}
	fs.dnlc.put(dir, "..", parent)
	return nil
}

// Readdir lists dir's entries, excluding "." and "..".
func (fs *FS) Readdir(dir Ino) ([]Dirent, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []Dirent
	err := fs.dirScanLocked(dir, func(_ uint64, ino Ino, name string) bool {
		if name != "." && name != ".." {
			out = append(out, Dirent{Name: name, Ino: ino})
		}
		return false
	})
	return out, err
}

// ReaddirAll lists dir's entries including "." and "..", for fsck.
func (fs *FS) ReaddirAll(dir Ino) ([]Dirent, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []Dirent
	err := fs.dirScanLocked(dir, func(_ uint64, ino Ino, name string) bool {
		out = append(out, Dirent{Name: name, Ino: ino})
		return false
	})
	return out, err
}
