package ufs

import (
	"testing"

	"repro/internal/disk"
)

// TestWarmLookupCostsNoIO reproduces the substrate half of paper §6:
// opening a recently accessed file involves no disk I/O beyond what the
// first access already paid.
func TestWarmLookupCostsNoIO(t *testing.T) {
	dev := disk.New(1024)
	fs, err := Mkfs(dev, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := fs.Mkdir(fs.Root(), "dir")
	ino, _ := fs.Create(d, "file")
	fs.WriteFile(ino, []byte("contents"))

	// Cold: flush caches, then resolve dir/file and read the inode.
	fs.FlushCaches()
	dev.ResetStats()
	d2, err := fs.Lookup(fs.Root(), "dir")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs.Lookup(d2, "file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(f2); err != nil {
		t.Fatal(err)
	}
	cold := dev.Stats()
	if cold.Reads == 0 {
		t.Fatal("cold path did no I/O; accounting broken")
	}

	// Warm: the identical sequence must hit only caches.
	dev.ResetStats()
	d3, _ := fs.Lookup(fs.Root(), "dir")
	f3, _ := fs.Lookup(d3, "file")
	if _, err := fs.Stat(f3); err != nil {
		t.Fatal(err)
	}
	if warm := dev.Stats(); warm.Total() != 0 {
		t.Fatalf("warm path did %v of I/O, want none", warm)
	}
}

func TestDisabledCachesAlwaysHitDisk(t *testing.T) {
	dev := disk.New(1024)
	fs, err := Mkfs(dev, 256, &Options{DisableCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Create(fs.Root(), "f")
	fs.WriteFile(ino, []byte("x"))
	dev.ResetStats()
	for i := 0; i < 3; i++ {
		if _, err := fs.Lookup(fs.Root(), "f"); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	if s.Reads < 3 {
		t.Fatalf("cacheless lookups did only %v", s)
	}
	cs := fs.CacheStats()
	if cs.BufferHits != 0 || cs.NameHits != 0 || cs.InodeHits != 0 {
		t.Fatalf("disabled caches recorded hits: %+v", cs)
	}
}

func TestCacheStatsCount(t *testing.T) {
	dev := disk.New(1024)
	fs, _ := Mkfs(dev, 256, nil)
	fs.Create(fs.Root(), "f")
	fs.FlushCaches()
	fs.Lookup(fs.Root(), "f") // miss
	fs.Lookup(fs.Root(), "f") // hit
	cs := fs.CacheStats()
	if cs.NameMisses == 0 || cs.NameHits == 0 {
		t.Fatalf("DNLC counters: %+v", cs)
	}
}

func TestBufferCacheEviction(t *testing.T) {
	dev := disk.New(1024)
	fs, err := Mkfs(dev, 128, &Options{BufferCacheBlocks: 4, InodeCacheEntries: 4, DNLCEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Create(fs.Root(), "f")
	data := make([]byte, 16*BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	// Reading the whole file sweeps the tiny cache several times over; the
	// contents must still be correct.
	got, err := fs.ReadFile(ino)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d: got %d", i, got[i])
		}
	}
}

func TestDNLCInvalidationOnRemoveAndRename(t *testing.T) {
	dev := disk.New(1024)
	fs, _ := Mkfs(dev, 256, nil)
	ino, _ := fs.Create(fs.Root(), "a")
	fs.Lookup(fs.Root(), "a") // warm the DNLC
	if err := fs.Rename(fs.Root(), "a", fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "a"); err == nil {
		t.Fatal("stale DNLC entry served after rename")
	}
	got, err := fs.Lookup(fs.Root(), "b")
	if err != nil || got != ino {
		t.Fatalf("lookup b: %d, %v", got, err)
	}
	if err := fs.Remove(fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "b"); err == nil {
		t.Fatal("stale DNLC entry served after remove")
	}
}

func TestFlushCachesPreservesData(t *testing.T) {
	dev := disk.New(1024)
	fs, _ := Mkfs(dev, 256, nil)
	ino, _ := fs.Create(fs.Root(), "f")
	fs.WriteFile(ino, []byte("durable"))
	fs.FlushCaches()
	got, err := fs.ReadFile(ino)
	if err != nil || string(got) != "durable" {
		t.Fatalf("after flush: %q, %v", got, err)
	}
}

func TestSetCachesEnabledToggle(t *testing.T) {
	dev := disk.New(1024)
	fs, _ := Mkfs(dev, 256, nil)
	fs.Create(fs.Root(), "f")
	fs.SetCachesEnabled(false)
	dev.ResetStats()
	fs.Lookup(fs.Root(), "f")
	if dev.Stats().Total() == 0 {
		t.Fatal("disabled caches served from memory")
	}
	fs.SetCachesEnabled(true)
	fs.Lookup(fs.Root(), "f") // repopulate
	dev.ResetStats()
	fs.Lookup(fs.Root(), "f")
	if dev.Stats().Total() != 0 {
		t.Fatal("re-enabled caches not serving")
	}
}
