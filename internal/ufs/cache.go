package ufs

import (
	"container/list"

	"repro/internal/disk"
)

// bufferCache is a write-through LRU block cache.  Write-through keeps
// crash semantics trivial (every completed write is on the device) while
// still giving the read-path locality wins the paper's dual-mapping design
// relies on (§2.6).
type bufferCache struct {
	dev     *disk.Device
	cap     int
	enabled bool
	lru     *list.List // of *bufEntry, front = most recent
	byBlock map[uint32]*list.Element
	hits    uint64
	misses  uint64
}

type bufEntry struct {
	bn   uint32
	data []byte
}

func newBufferCache(dev *disk.Device, capacity int, enabled bool) *bufferCache {
	return &bufferCache{
		dev:     dev,
		cap:     capacity,
		enabled: enabled,
		lru:     list.New(),
		byBlock: make(map[uint32]*list.Element),
	}
}

func (c *bufferCache) setEnabled(on bool) {
	c.enabled = on
	if !on {
		c.flush()
	}
}

func (c *bufferCache) flush() {
	c.lru.Init()
	c.byBlock = make(map[uint32]*list.Element)
}

// read returns a copy of block bn, consulting the cache first.
func (c *bufferCache) read(bn uint32) ([]byte, error) {
	if c.enabled {
		if e, ok := c.byBlock[bn]; ok {
			c.hits++
			c.lru.MoveToFront(e)
			out := make([]byte, BlockSize)
			copy(out, e.Value.(*bufEntry).data)
			return out, nil
		}
		c.misses++
	}
	p := make([]byte, BlockSize)
	if err := c.dev.Read(int(bn), p); err != nil {
		return nil, err
	}
	c.insert(bn, p)
	return p, nil
}

// write stores data as block bn, writing through to the device.
func (c *bufferCache) write(bn uint32, data []byte) error {
	if err := c.dev.Write(int(bn), data); err != nil {
		// Failed writes must not populate the cache: the bytes never
		// reached the device, and serving them later would hide the crash.
		c.evict(bn)
		return err
	}
	c.insert(bn, data)
	return nil
}

func (c *bufferCache) insert(bn uint32, data []byte) {
	if !c.enabled {
		return
	}
	cp := make([]byte, BlockSize)
	copy(cp, data)
	if e, ok := c.byBlock[bn]; ok {
		e.Value.(*bufEntry).data = cp
		c.lru.MoveToFront(e)
		return
	}
	e := c.lru.PushFront(&bufEntry{bn: bn, data: cp})
	c.byBlock[bn] = e
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.byBlock, old.Value.(*bufEntry).bn)
	}
}

func (c *bufferCache) evict(bn uint32) {
	if e, ok := c.byBlock[bn]; ok {
		c.lru.Remove(e)
		delete(c.byBlock, bn)
	}
}

// inodeCache holds decoded inodes.  Because it sits above the buffer cache
// its effect on disk I/O is indirect, but it models the "Ficus directory
// inode ... must be loaded" accounting of paper §6 and lets experiments
// separate decode hits from block hits.
type inodeCache struct {
	fs      *FS
	cap     int
	enabled bool
	lru     *list.List // of *icEntry
	byIno   map[Ino]*list.Element
	hits    uint64
	misses  uint64
}

type icEntry struct {
	ino Ino
	din dinode
}

func newInodeCache(fs *FS, capacity int, enabled bool) *inodeCache {
	return &inodeCache{
		fs:      fs,
		cap:     capacity,
		enabled: enabled,
		lru:     list.New(),
		byIno:   make(map[Ino]*list.Element),
	}
}

func (c *inodeCache) setEnabled(on bool) {
	c.enabled = on
	if !on {
		c.flush()
	}
}

func (c *inodeCache) flush() {
	c.lru.Init()
	c.byIno = make(map[Ino]*list.Element)
}

func (c *inodeCache) get(ino Ino) (dinode, error) {
	if c.enabled {
		if e, ok := c.byIno[ino]; ok {
			c.hits++
			c.lru.MoveToFront(e)
			return e.Value.(*icEntry).din, nil
		}
		c.misses++
	}
	din, err := c.fs.readInodeFromDisk(ino)
	if err != nil {
		return dinode{}, err
	}
	c.put(ino, din)
	return din, nil
}

func (c *inodeCache) put(ino Ino, din dinode) {
	if !c.enabled {
		return
	}
	if e, ok := c.byIno[ino]; ok {
		e.Value.(*icEntry).din = din
		c.lru.MoveToFront(e)
		return
	}
	e := c.lru.PushFront(&icEntry{ino: ino, din: din})
	c.byIno[ino] = e
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.byIno, old.Value.(*icEntry).ino)
	}
}

func (c *inodeCache) drop(ino Ino) {
	if e, ok := c.byIno[ino]; ok {
		c.lru.Remove(e)
		delete(c.byIno, ino)
	}
}

// nameCache is the directory name lookup cache (DNLC).  Entries map
// (directory inode, component name) to the child inode and are invalidated
// on unlink/rename/rmdir of that name.
type nameCache struct {
	cap     int
	enabled bool
	lru     *list.List // of *ncEntry
	byKey   map[ncKey]*list.Element
	hits    uint64
	misses  uint64
}

type ncKey struct {
	dir  Ino
	name string
}

type ncEntry struct {
	key   ncKey
	child Ino
}

func newNameCache(capacity int, enabled bool) *nameCache {
	return &nameCache{
		cap:     capacity,
		enabled: enabled,
		lru:     list.New(),
		byKey:   make(map[ncKey]*list.Element),
	}
}

func (c *nameCache) setEnabled(on bool) {
	c.enabled = on
	if !on {
		c.flush()
	}
}

func (c *nameCache) flush() {
	c.lru.Init()
	c.byKey = make(map[ncKey]*list.Element)
}

func (c *nameCache) get(dir Ino, name string) (Ino, bool) {
	if !c.enabled {
		return 0, false
	}
	if e, ok := c.byKey[ncKey{dir, name}]; ok {
		c.hits++
		c.lru.MoveToFront(e)
		return e.Value.(*ncEntry).child, true
	}
	c.misses++
	return 0, false
}

func (c *nameCache) put(dir Ino, name string, child Ino) {
	if !c.enabled {
		return
	}
	k := ncKey{dir, name}
	if e, ok := c.byKey[k]; ok {
		e.Value.(*ncEntry).child = child
		c.lru.MoveToFront(e)
		return
	}
	e := c.lru.PushFront(&ncEntry{key: k, child: child})
	c.byKey[k] = e
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.byKey, old.Value.(*ncEntry).key)
	}
}

func (c *nameCache) drop(dir Ino, name string) {
	if e, ok := c.byKey[ncKey{dir, name}]; ok {
		c.lru.Remove(e)
		delete(c.byKey, ncKey{dir, name})
	}
}

// dropDir removes every entry under a directory (used by rmdir of the
// directory itself, where its children entries are already gone).
func (c *nameCache) dropDir(dir Ino) {
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		ent := e.Value.(*ncEntry)
		if ent.key.dir == dir || ent.child == dir {
			c.lru.Remove(e)
			delete(c.byKey, ent.key)
		}
		e = next
	}
}
