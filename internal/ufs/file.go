package ufs

import (
	"fmt"
	"io"
)

// Stat describes an inode.
type Stat struct {
	Ino   Ino
	Type  FileType
	Nlink uint16
	Mode  uint16
	Size  uint64
	Mtime uint64
	Ctime uint64
}

// Stat returns metadata for ino.
func (fs *FS) Stat(ino Ino) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return Stat{}, err
	}
	return Stat{
		Ino: ino, Type: din.Type, Nlink: din.Nlink, Mode: din.Mode,
		Size: din.Size, Mtime: din.Mtime, Ctime: din.Ctime,
	}, nil
}

// SetMode updates the informational permission bits.
func (fs *FS) SetMode(ino Ino, mode uint16) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return err
	}
	din.Mode = mode
	din.Ctime = fs.tick()
	return fs.writeInodeLocked(ino, din)
}

// ReadAt reads up to len(p) bytes at offset off, returning io.EOF past end
// of file as os.File does.
func (fs *FS) ReadAt(ino Ino, p []byte, off int64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.readAtLocked(ino, p, off)
}

func (fs *FS) readAtLocked(ino Ino, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrInvalidWhere
	}
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return 0, err
	}
	if din.Type == TypeDir {
		// Directories are read through Readdir; raw reads support fsck only.
	}
	if uint64(off) >= din.Size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := din.Size - uint64(off); uint64(n) > rem {
		n = int(rem)
	}
	read := 0
	for read < n {
		fbn := uint64(off+int64(read)) / BlockSize
		boff := int(uint64(off+int64(read)) % BlockSize)
		chunk := BlockSize - boff
		if chunk > n-read {
			chunk = n - read
		}
		bn, err := fs.blockmapLocked(&din, fbn, false)
		if err != nil {
			return read, err
		}
		if bn == 0 {
			// Hole: zeros.
			for i := 0; i < chunk; i++ {
				p[read+i] = 0
			}
		} else {
			blk, err := fs.bc.read(bn)
			if err != nil {
				return read, err
			}
			copy(p[read:read+chunk], blk[boff:])
		}
		read += chunk
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// WriteAt writes p at offset off, extending the file as needed.
func (fs *FS) WriteAt(ino Ino, p []byte, off int64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeAtLocked(ino, p, off)
}

func (fs *FS) writeAtLocked(ino Ino, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrInvalidWhere
	}
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return 0, err
	}
	if din.Type == TypeDir {
		return 0, ErrIsDir
	}
	written := 0
	for written < len(p) {
		fbn := uint64(off+int64(written)) / BlockSize
		boff := int(uint64(off+int64(written)) % BlockSize)
		chunk := BlockSize - boff
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		bn, err := fs.blockmapLocked(&din, fbn, true)
		if err != nil {
			// Persist pointer changes made so far before reporting.
			_ = fs.writeInodeLocked(ino, din)
			return written, err
		}
		var blk []byte
		if boff == 0 && chunk == BlockSize {
			blk = make([]byte, BlockSize)
		} else {
			blk, err = fs.bc.read(bn)
			if err != nil {
				_ = fs.writeInodeLocked(ino, din)
				return written, err
			}
		}
		copy(blk[boff:], p[written:written+chunk])
		if err := fs.bc.write(bn, blk); err != nil {
			_ = fs.writeInodeLocked(ino, din)
			return written, err
		}
		written += chunk
	}
	if end := uint64(off) + uint64(written); end > din.Size {
		din.Size = end
	}
	din.Mtime = fs.tick()
	if err := fs.writeInodeLocked(ino, din); err != nil {
		return written, err
	}
	return written, nil
}

// Truncate sets the file size, freeing blocks past the new end.
func (fs *FS) Truncate(ino Ino, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return err
	}
	if din.Type == TypeDir {
		return ErrIsDir
	}
	return fs.itruncateLocked(ino, size)
}

// ReadFile reads the whole file.
func (fs *FS) ReadFile(ino Ino) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return nil, err
	}
	p := make([]byte, din.Size)
	if din.Size == 0 {
		return p, nil
	}
	n, err := fs.readAtLocked(ino, p, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return p[:n], nil
}

// WriteFile replaces the whole file contents.
func (fs *FS) WriteFile(ino Ino, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return err
	}
	if din.Type == TypeDir {
		return ErrIsDir
	}
	if err := fs.itruncateLocked(ino, 0); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	_, err = fs.writeAtLocked(ino, data, 0)
	return err
}

// Symlink creates a symbolic link named name in dir whose target is target.
func (fs *FS) Symlink(dir Ino, name, target string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := validName(name); err != nil {
		return 0, err
	}
	ddin, err := fs.readInodeLocked(dir)
	if err != nil {
		return 0, err
	}
	if ddin.Type != TypeDir {
		return 0, ErrNotDir
	}
	if _, err := fs.dirLookupLocked(dir, name); err == nil {
		return 0, ErrExist
	} else if err != ErrNotExist {
		return 0, err
	}
	ino, err := fs.iallocLocked(TypeSymlink)
	if err != nil {
		return 0, err
	}
	if _, err := fs.writeAtLocked(ino, []byte(target), 0); err != nil {
		return 0, err
	}
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return 0, err
	}
	din.Nlink = 1
	if err := fs.writeInodeLocked(ino, din); err != nil {
		return 0, err
	}
	if err := fs.dirAddLocked(dir, name, ino); err != nil {
		_ = fs.ifreeLocked(ino)
		return 0, err
	}
	return ino, nil
}

// Readlink returns the target of a symlink.
func (fs *FS) Readlink(ino Ino) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		return "", err
	}
	if din.Type != TypeSymlink {
		return "", ErrNotSymlink
	}
	p := make([]byte, din.Size)
	if _, err := fs.readAtLocked(ino, p, 0); err != nil && err != io.EOF {
		return "", err
	}
	return string(p), nil
}

// Sync is a no-op: the buffer cache is write-through, so every completed
// operation is already on the device.
func (fs *FS) Sync() error { return nil }

// StatFS summarizes usage.
type StatFS struct {
	TotalBlocks uint32
	DataBlocks  uint32
	FreeBlocks  uint32
	TotalInodes uint32
	FreeInodes  uint32
}

// Statfs reports usage by scanning the bitmaps.
func (fs *FS) Statfs() (StatFS, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out StatFS
	out.TotalBlocks = fs.sb.NBlocks
	out.DataBlocks = fs.sb.NBlocks - fs.sb.DataStart
	for bn := fs.sb.DataStart; bn < fs.sb.NBlocks; bn++ {
		used, err := fs.bmapTest(blkBitmap, bn)
		if err != nil {
			return out, err
		}
		if !used {
			out.FreeBlocks++
		}
	}
	out.TotalInodes = fs.sb.NInodes
	for i := uint32(1); i < fs.sb.NInodes; i++ {
		used, err := fs.bmapTest(inoBitmap, i)
		if err != nil {
			return out, err
		}
		if !used {
			out.FreeInodes++
		}
	}
	return out, nil
}

// debugString renders an inode for error messages.
func (d dinode) debugString(ino Ino) string {
	return fmt.Sprintf("ino %d type=%v nlink=%d size=%d", ino, d.Type, d.Nlink, d.Size)
}
