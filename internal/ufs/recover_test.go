package ufs

import (
	"testing"

	"repro/internal/disk"
)

// TestRecoverRepairsLeaks plants each leak class a crash can leave behind
// and verifies that a remount (which runs Recover) returns the volume to a
// state Check calls clean.
func TestRecoverRepairsLeaks(t *testing.T) {
	dev := disk.New(512)
	fs, err := Mkfs(dev, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Create(fs.Root(), "keep")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, []byte("survives recovery")); err != nil {
		t.Fatal(err)
	}

	fs.mu.Lock()
	// Ghost inode: bitmap bit set, inode never initialized (crash inside
	// ialloc between the bitmap write and the inode write).
	if err := fs.bmapSet(inoBitmap, 20, true); err != nil {
		t.Fatal(err)
	}
	// Leaked block: allocated in the bitmap, referenced by no inode (crash
	// inside balloc before the pointer attach).
	leaked, err := fs.ballocLocked()
	if err != nil {
		t.Fatal(err)
	}
	// Unreachable inode: allocated and initialized but named by no
	// directory (crash between dir-entry removal and the inode free).
	orphan, err := fs.iallocLocked(TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	// Stale link count on a live file (crash between a dir write and the
	// nlink update).
	din, err := fs.readInodeLocked(ino)
	if err != nil {
		t.Fatal(err)
	}
	din.Nlink = 7
	if err := fs.writeInodeLocked(ino, din); err != nil {
		t.Fatal(err)
	}
	fs.mu.Unlock()

	if problems, err := fs.Check(); err != nil || len(problems) == 0 {
		t.Fatalf("planted corruption not visible to Check: %v, %v", problems, err)
	}

	fs2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if problems, err := fs2.Check(); err != nil {
		t.Fatal(err)
	} else if len(problems) != 0 {
		t.Fatalf("recovery left problems: %v", problems)
	}

	// The live file survived, the leaks are reclaimed.
	data, err := fs2.ReadFile(ino)
	if err != nil || string(data) != "survives recovery" {
		t.Fatalf("live file damaged: %q, %v", data, err)
	}
	fs2.mu.Lock()
	defer fs2.mu.Unlock()
	for _, c := range []struct {
		kind bitmapKind
		idx  uint32
	}{{inoBitmap, 20}, {inoBitmap, uint32(orphan)}, {blkBitmap, leaked}} {
		used, err := fs2.bmapTest(c.kind, c.idx)
		if err != nil {
			t.Fatal(err)
		}
		if used {
			t.Errorf("leak at bitmap %v idx %d not reclaimed", c.kind, c.idx)
		}
	}
	if st, err := fs2.readInodeLocked(ino); err != nil || st.Nlink != 1 {
		t.Fatalf("nlink not repaired: %+v, %v", st, err)
	}
}
