package ufs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/disk"
)

func newTestFS(t *testing.T, blocks int) *FS {
	t.Helper()
	fs, err := Mkfs(disk.New(blocks), 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func checkClean(t *testing.T, fs *FS) {
	t.Helper()
	probs, err := fs.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(probs) != 0 {
		t.Fatalf("fsck found problems:\n%s", strings.Join(probs, "\n"))
	}
}

func TestMkfsAndRoot(t *testing.T) {
	fs := newTestFS(t, 1024)
	st, err := fs.Stat(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != TypeDir || st.Nlink != 2 {
		t.Fatalf("root stat %+v", st)
	}
	ents, err := fs.Readdir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("fresh root has entries: %v", ents)
	}
	checkClean(t, fs)
}

func TestMkfsTooSmall(t *testing.T) {
	if _, err := Mkfs(disk.New(4), 512, nil); err == nil {
		t.Fatal("expected error for tiny device")
	}
}

func TestMountBadMagic(t *testing.T) {
	if _, err := Mount(disk.New(64), nil); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("err = %v, want ErrNotMounted", err)
	}
}

func TestMountWrongSize(t *testing.T) {
	d := disk.New(256)
	if _, err := Mkfs(d, 64, nil); err != nil {
		t.Fatal(err)
	}
	small := disk.New(64)
	// Copy superblock to a differently-sized device.
	blk := make([]byte, BlockSize)
	if err := d.Read(0, blk); err != nil {
		t.Fatal(err)
	}
	if err := small.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(small, nil); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs := newTestFS(t, 1024)
	ino, err := fs.Create(fs.Root(), "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if _, err := fs.WriteAt(ino, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := fs.ReadAt(ino, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	st, err := fs.Stat(ino)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != uint64(len(data)) || st.Type != TypeFile || st.Nlink != 1 {
		t.Fatalf("stat %+v", st)
	}
	checkClean(t, fs)
}

func TestPersistenceAcrossRemount(t *testing.T) {
	dev := disk.New(1024)
	fs, err := Mkfs(dev, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := fs.Mkdir(fs.Root(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Create(dir, "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, []byte("persistent")); err != nil {
		t.Fatal(err)
	}

	fs2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir2, err := fs2.Lookup(fs2.Root(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	ino2, err := fs2.Lookup(dir2, "f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ino2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persistent" {
		t.Fatalf("read %q", got)
	}
	checkClean(t, fs2)
}

func TestLargeFileThroughIndirects(t *testing.T) {
	// Write past the direct and single-indirect zones.
	fs := newTestFS(t, (NDirect+PtrsPerBlock+64)+256)
	ino, err := fs.Create(fs.Root(), "big")
	if err != nil {
		t.Fatal(err)
	}
	// Touch one block in each zone plus verify contents.
	offsets := []int64{
		0,                                        // direct
		(NDirect - 1) * BlockSize,                // last direct
		NDirect * BlockSize,                      // first single-indirect
		(NDirect + 100) * BlockSize,              // mid single-indirect
		(NDirect + PtrsPerBlock) * BlockSize,     // first double-indirect
		(NDirect + PtrsPerBlock + 5) * BlockSize, // inside double-indirect
	}
	for i, off := range offsets {
		tag := []byte(fmt.Sprintf("zone-%d", i))
		if _, err := fs.WriteAt(ino, tag, off); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	for i, off := range offsets {
		want := fmt.Sprintf("zone-%d", i)
		got := make([]byte, len(want))
		if _, err := fs.ReadAt(ino, got, off); err != nil && err != io.EOF {
			t.Fatalf("read at %d: %v", off, err)
		}
		if string(got) != want {
			t.Fatalf("at %d: read %q, want %q", off, got, want)
		}
	}
	// Holes between the zones read as zeros.
	hole := make([]byte, 64)
	if _, err := fs.ReadAt(ino, hole, BlockSize*3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 64)) {
		t.Fatal("hole not zero")
	}
	checkClean(t, fs)

	// Truncate back to one block frees everything else.
	before, err := fs.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ino, BlockSize); err != nil {
		t.Fatal(err)
	}
	after, err := fs.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if after.FreeBlocks <= before.FreeBlocks {
		t.Fatalf("truncate freed nothing: before %d, after %d", before.FreeBlocks, after.FreeBlocks)
	}
	checkClean(t, fs)
}

func TestTruncateGrowIsSparse(t *testing.T) {
	fs := newTestFS(t, 256)
	ino, err := fs.Create(fs.Root(), "sparse")
	if err != nil {
		t.Fatal(err)
	}
	before, _ := fs.Statfs()
	fs.mu.Lock()
	err = fs.itruncateLocked(ino, 50*BlockSize)
	fs.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	after, _ := fs.Statfs()
	if before.FreeBlocks != after.FreeBlocks {
		t.Fatalf("grow-truncate allocated blocks: %d -> %d", before.FreeBlocks, after.FreeBlocks)
	}
	st, _ := fs.Stat(ino)
	if st.Size != 50*BlockSize {
		t.Fatalf("size %d", st.Size)
	}
	p := make([]byte, 10)
	if _, err := fs.ReadAt(ino, p, 13*BlockSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, make([]byte, 10)) {
		t.Fatal("sparse region not zero")
	}
	checkClean(t, fs)
}

func TestWriteFileReplacesContents(t *testing.T) {
	fs := newTestFS(t, 512)
	ino, _ := fs.Create(fs.Root(), "f")
	if err := fs.WriteFile(ino, bytes.Repeat([]byte("x"), 3*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ino)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "short" {
		t.Fatalf("read %q", got)
	}
	checkClean(t, fs)
}

func TestLinkAndRemove(t *testing.T) {
	fs := newTestFS(t, 512)
	ino, _ := fs.Create(fs.Root(), "a")
	if err := fs.Link(fs.Root(), "b", ino); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat(ino)
	if st.Nlink != 2 {
		t.Fatalf("nlink %d, want 2", st.Nlink)
	}
	if err := fs.WriteFile(ino, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	b, _ := fs.Lookup(fs.Root(), "b")
	if b != ino {
		t.Fatalf("b is %d, want %d", b, ino)
	}
	if err := fs.Remove(fs.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("a still visible: %v", err)
	}
	got, err := fs.ReadFile(ino)
	if err != nil || string(got) != "shared" {
		t.Fatalf("after unlink a: %q, %v", got, err)
	}
	if err := fs.Remove(fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ino); !errors.Is(err, ErrBadInode) {
		t.Fatalf("inode should be freed: %v", err)
	}
	checkClean(t, fs)
}

func TestLinkToDirRejected(t *testing.T) {
	fs := newTestFS(t, 512)
	d, _ := fs.Mkdir(fs.Root(), "d")
	if err := fs.Link(fs.Root(), "dd", d); !errors.Is(err, ErrLinkedDir) {
		t.Fatalf("err = %v", err)
	}
}

func TestMkdirRmdir(t *testing.T) {
	fs := newTestFS(t, 512)
	d, err := fs.Mkdir(fs.Root(), "d")
	if err != nil {
		t.Fatal(err)
	}
	rst, _ := fs.Stat(fs.Root())
	if rst.Nlink != 3 {
		t.Fatalf("root nlink %d, want 3", rst.Nlink)
	}
	if _, err := fs.Create(d, "f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(fs.Root(), "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Remove(d, "f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(fs.Root(), "d"); err != nil {
		t.Fatal(err)
	}
	rst, _ = fs.Stat(fs.Root())
	if rst.Nlink != 2 {
		t.Fatalf("root nlink %d after rmdir, want 2", rst.Nlink)
	}
	checkClean(t, fs)
}

func TestRmdirOfFileAndRemoveOfDir(t *testing.T) {
	fs := newTestFS(t, 512)
	f, _ := fs.Create(fs.Root(), "f")
	_ = f
	d, _ := fs.Mkdir(fs.Root(), "d")
	_ = d
	if err := fs.Rmdir(fs.Root(), "f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("rmdir of file: %v", err)
	}
	if err := fs.Remove(fs.Root(), "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("remove of dir: %v", err)
	}
}

func TestRenameSimple(t *testing.T) {
	fs := newTestFS(t, 512)
	ino, _ := fs.Create(fs.Root(), "a")
	if err := fs.WriteFile(ino, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(fs.Root(), "a", fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "a"); !errors.Is(err, ErrNotExist) {
		t.Fatal("a still exists")
	}
	b, err := fs.Lookup(fs.Root(), "b")
	if err != nil || b != ino {
		t.Fatalf("b lookup: %d, %v", b, err)
	}
	checkClean(t, fs)
}

func TestRenameReplacesFile(t *testing.T) {
	fs := newTestFS(t, 512)
	a, _ := fs.Create(fs.Root(), "a")
	victim, _ := fs.Create(fs.Root(), "b")
	if err := fs.WriteFile(victim, []byte("victim")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(fs.Root(), "a", fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	b, _ := fs.Lookup(fs.Root(), "b")
	if b != a {
		t.Fatalf("b is %d, want %d", b, a)
	}
	if _, err := fs.Stat(victim); !errors.Is(err, ErrBadInode) {
		t.Fatalf("victim not freed: %v", err)
	}
	checkClean(t, fs)
}

func TestRenameDirAcrossParents(t *testing.T) {
	fs := newTestFS(t, 512)
	d1, _ := fs.Mkdir(fs.Root(), "d1")
	d2, _ := fs.Mkdir(fs.Root(), "d2")
	sub, _ := fs.Mkdir(d1, "sub")
	if err := fs.Rename(d1, "sub", d2, "moved"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup(d2, "moved")
	if err != nil || got != sub {
		t.Fatalf("moved lookup: %d, %v", got, err)
	}
	up, err := fs.Lookup(sub, "..")
	if err != nil || up != d2 {
		t.Fatalf("..: %d, %v (want %d)", up, err, d2)
	}
	checkClean(t, fs)
}

func TestRenameIntoOwnSubtreeRejected(t *testing.T) {
	fs := newTestFS(t, 512)
	a, _ := fs.Mkdir(fs.Root(), "a")
	b, _ := fs.Mkdir(a, "b")
	if err := fs.Rename(fs.Root(), "a", b, "x"); !errors.Is(err, ErrDirLoop) {
		t.Fatalf("err = %v, want ErrDirLoop", err)
	}
	if err := fs.Rename(fs.Root(), "a", a, "x"); !errors.Is(err, ErrDirLoop) {
		t.Fatalf("rename into self: %v", err)
	}
	checkClean(t, fs)
}

func TestRenameNoopAndHardLinkAlias(t *testing.T) {
	fs := newTestFS(t, 512)
	ino, _ := fs.Create(fs.Root(), "a")
	if err := fs.Rename(fs.Root(), "a", fs.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(fs.Root(), "alias", ino); err != nil {
		t.Fatal(err)
	}
	// rename(a, alias) where both name the same inode: POSIX removes "a".
	if err := fs.Rename(fs.Root(), "a", fs.Root(), "alias"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "a"); !errors.Is(err, ErrNotExist) {
		t.Fatal("a survived rename onto alias")
	}
	st, _ := fs.Stat(ino)
	if st.Nlink != 1 {
		t.Fatalf("nlink %d, want 1", st.Nlink)
	}
	checkClean(t, fs)
}

func TestRenameDirOntoExistingRejected(t *testing.T) {
	fs := newTestFS(t, 512)
	fs.Mkdir(fs.Root(), "d1")
	fs.Mkdir(fs.Root(), "d2")
	fs.Create(fs.Root(), "f")
	if err := fs.Rename(fs.Root(), "d1", fs.Root(), "d2"); !errors.Is(err, ErrExist) {
		t.Fatalf("dir onto dir: %v", err)
	}
	if err := fs.Rename(fs.Root(), "d1", fs.Root(), "f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("dir onto file: %v", err)
	}
	if err := fs.Rename(fs.Root(), "f", fs.Root(), "d2"); !errors.Is(err, ErrExist) {
		t.Fatalf("file onto dir: %v", err)
	}
}

func TestSymlink(t *testing.T) {
	fs := newTestFS(t, 512)
	ino, err := fs.Symlink(fs.Root(), "ln", "/target/path")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Readlink(ino)
	if err != nil || got != "/target/path" {
		t.Fatalf("readlink: %q, %v", got, err)
	}
	f, _ := fs.Create(fs.Root(), "f")
	if _, err := fs.Readlink(f); !errors.Is(err, ErrNotSymlink) {
		t.Fatalf("readlink of file: %v", err)
	}
	if err := fs.Remove(fs.Root(), "ln"); err != nil {
		t.Fatal(err)
	}
	checkClean(t, fs)
}

func TestNameValidation(t *testing.T) {
	fs := newTestFS(t, 512)
	for _, name := range []string{"", ".", "..", "a/b", "nul\x00byte", strings.Repeat("n", MaxNameLen+1)} {
		if _, err := fs.Create(fs.Root(), name); err == nil {
			t.Errorf("Create(%q) succeeded", name)
		}
	}
	// Exactly MaxNameLen is fine.
	long := strings.Repeat("n", MaxNameLen)
	if _, err := fs.Create(fs.Root(), long); err != nil {
		t.Fatalf("Create(max-len): %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), long); err != nil {
		t.Fatalf("Lookup(max-len): %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), long+"x"); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("Lookup(too long): %v", err)
	}
}

func TestCreateExisting(t *testing.T) {
	fs := newTestFS(t, 512)
	fs.Create(fs.Root(), "f")
	if _, err := fs.Create(fs.Root(), "f"); !errors.Is(err, ErrExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Mkdir(fs.Root(), "f"); !errors.Is(err, ErrExist) {
		t.Fatalf("mkdir over file: %v", err)
	}
}

func TestLookupDotAndDotDot(t *testing.T) {
	fs := newTestFS(t, 512)
	d, _ := fs.Mkdir(fs.Root(), "d")
	if got, err := fs.Lookup(d, "."); err != nil || got != d {
		t.Fatalf(". = %d, %v", got, err)
	}
	if got, err := fs.Lookup(d, ".."); err != nil || got != fs.Root() {
		t.Fatalf(".. = %d, %v", got, err)
	}
	if got, err := fs.Lookup(fs.Root(), ".."); err != nil || got != fs.Root() {
		t.Fatalf("root .. = %d, %v", got, err)
	}
}

func TestManyEntriesInDirectory(t *testing.T) {
	fs := newTestFS(t, 2048)
	var names []string
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("file-%03d", i)
		if _, err := fs.Create(fs.Root(), name); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	ents, err := fs.Readdir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 200 {
		t.Fatalf("readdir: %d entries", len(ents))
	}
	// Remove every other one, then reuse the slots.
	for i := 0; i < 200; i += 2 {
		if err := fs.Remove(fs.Root(), names[i]); err != nil {
			t.Fatal(err)
		}
	}
	st0, _ := fs.Stat(fs.Root())
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("new-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st1, _ := fs.Stat(fs.Root())
	if st1.Size != st0.Size {
		t.Fatalf("slot reuse failed: dir grew %d -> %d", st0.Size, st1.Size)
	}
	checkClean(t, fs)
}

func TestOutOfSpace(t *testing.T) {
	fs := newTestFS(t, 40) // tiny device
	ino, err := fs.Create(fs.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64*BlockSize)
	_, err = fs.WriteAt(ino, big, 0)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// The filesystem must still be consistent after hitting ENOSPC.
	checkClean(t, fs)
}

func TestOutOfInodes(t *testing.T) {
	dev := disk.New(4096)
	fs, err := Mkfs(dev, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 32; i++ {
		_, lastErr = fs.Create(fs.Root(), fmt.Sprintf("f%d", i))
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoInodes) {
		t.Fatalf("err = %v, want ErrNoInodes", lastErr)
	}
	checkClean(t, fs)
}

func TestReadAtEOFSemantics(t *testing.T) {
	fs := newTestFS(t, 256)
	ino, _ := fs.Create(fs.Root(), "f")
	fs.WriteFile(ino, []byte("abc"))
	p := make([]byte, 10)
	n, err := fs.ReadAt(ino, p, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("n=%d err=%v, want 3, EOF", n, err)
	}
	n, err = fs.ReadAt(ino, p, 3)
	if n != 0 || err != io.EOF {
		t.Fatalf("at EOF: n=%d err=%v", n, err)
	}
	if _, err := fs.ReadAt(ino, p, -1); !errors.Is(err, ErrInvalidWhere) {
		t.Fatalf("negative offset: %v", err)
	}
	if _, err := fs.WriteAt(ino, p, -1); !errors.Is(err, ErrInvalidWhere) {
		t.Fatalf("negative offset write: %v", err)
	}
}

func TestStatfsAccounting(t *testing.T) {
	fs := newTestFS(t, 256)
	before, err := fs.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Create(fs.Root(), "f")
	fs.WriteFile(ino, make([]byte, 5*BlockSize))
	after, _ := fs.Statfs()
	if before.FreeBlocks-after.FreeBlocks != 5 {
		t.Fatalf("free blocks %d -> %d, want delta 5", before.FreeBlocks, after.FreeBlocks)
	}
	if before.FreeInodes-after.FreeInodes != 1 {
		t.Fatalf("free inodes delta %d, want 1", before.FreeInodes-after.FreeInodes)
	}
	fs.Remove(fs.Root(), "f")
	final, _ := fs.Statfs()
	if final.FreeBlocks != before.FreeBlocks || final.FreeInodes != before.FreeInodes {
		t.Fatalf("space not reclaimed: %+v vs %+v", final, before)
	}
}

func TestSetMode(t *testing.T) {
	fs := newTestFS(t, 256)
	ino, _ := fs.Create(fs.Root(), "f")
	if err := fs.SetMode(ino, 0o644); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat(ino)
	if st.Mode != 0o644 {
		t.Fatalf("mode %o", st.Mode)
	}
}

// TestModelBasedRandomOps drives the file system with random operations and
// cross-checks every observation against a trivial in-memory model, then
// runs fsck.  This is the package's main correctness property test.
func TestModelBasedRandomOps(t *testing.T) {
	fs := newTestFS(t, 4096)
	rng := rand.New(rand.NewSource(12345))

	type mfile struct {
		data []byte
	}
	model := map[string]*mfile{} // name -> contents, flat namespace in root
	names := func() []string {
		out := make([]string, 0, len(model))
		for n := range model {
			out = append(out, n)
		}
		return out
	}
	inoOf := func(name string) Ino {
		ino, err := fs.Lookup(fs.Root(), name)
		if err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
		return ino
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // create
			name := fmt.Sprintf("f%d", rng.Intn(40))
			_, err := fs.Create(fs.Root(), name)
			if _, exists := model[name]; exists {
				if !errors.Is(err, ErrExist) {
					t.Fatalf("step %d: create existing %q: %v", step, name, err)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: create %q: %v", step, name, err)
				}
				model[name] = &mfile{}
			}
		case op < 5: // write at random offset
			ns := names()
			if len(ns) == 0 {
				continue
			}
			name := ns[rng.Intn(len(ns))]
			off := rng.Intn(3 * BlockSize)
			data := make([]byte, rng.Intn(2*BlockSize)+1)
			rng.Read(data)
			if _, err := fs.WriteAt(inoOf(name), data, int64(off)); err != nil {
				t.Fatalf("step %d: write %q: %v", step, name, err)
			}
			m := model[name]
			if need := off + len(data); need > len(m.data) {
				m.data = append(m.data, make([]byte, need-len(m.data))...)
			}
			copy(m.data[off:], data)
		case op < 7: // read and compare
			ns := names()
			if len(ns) == 0 {
				continue
			}
			name := ns[rng.Intn(len(ns))]
			got, err := fs.ReadFile(inoOf(name))
			if err != nil {
				t.Fatalf("step %d: read %q: %v", step, name, err)
			}
			if !bytes.Equal(got, model[name].data) {
				t.Fatalf("step %d: %q contents diverged (%d vs %d bytes)", step, name, len(got), len(model[name].data))
			}
		case op < 8: // truncate
			ns := names()
			if len(ns) == 0 {
				continue
			}
			name := ns[rng.Intn(len(ns))]
			size := rng.Intn(4 * BlockSize)
			if err := fs.Truncate(inoOf(name), uint64(size)); err != nil {
				t.Fatalf("step %d: truncate %q: %v", step, name, err)
			}
			m := model[name]
			if size <= len(m.data) {
				m.data = m.data[:size]
			} else {
				m.data = append(m.data, make([]byte, size-len(m.data))...)
			}
		case op < 9: // remove
			ns := names()
			if len(ns) == 0 {
				continue
			}
			name := ns[rng.Intn(len(ns))]
			if err := fs.Remove(fs.Root(), name); err != nil {
				t.Fatalf("step %d: remove %q: %v", step, name, err)
			}
			delete(model, name)
		default: // rename
			ns := names()
			if len(ns) == 0 {
				continue
			}
			src := ns[rng.Intn(len(ns))]
			dst := fmt.Sprintf("f%d", rng.Intn(40))
			err := fs.Rename(fs.Root(), src, fs.Root(), dst)
			if err != nil {
				t.Fatalf("step %d: rename %q %q: %v", step, src, dst, err)
			}
			if src != dst {
				model[dst] = model[src]
				delete(model, src)
			}
		}
	}
	// Final sweep: every model file matches; directory listing matches.
	ents, err := fs.Readdir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(model) {
		t.Fatalf("%d entries on disk, %d in model", len(ents), len(model))
	}
	for name, m := range model {
		got, err := fs.ReadFile(inoOf(name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, m.data) {
			t.Fatalf("final: %q diverged", name)
		}
	}
	checkClean(t, fs)
}

func TestCheckDetectsCorruption(t *testing.T) {
	fs := newTestFS(t, 512)
	ino, _ := fs.Create(fs.Root(), "f")
	fs.WriteFile(ino, []byte("x"))
	// Corrupt: bump the link count behind the FS's back.
	fs.mu.Lock()
	din, _ := fs.readInodeLocked(ino)
	din.Nlink = 7
	fs.writeInodeLocked(ino, din)
	fs.mu.Unlock()
	probs, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) == 0 {
		t.Fatal("fsck missed a bad link count")
	}
}
