package ufs

import (
	"encoding/binary"
	"fmt"
)

// Check performs an fsck-style consistency scan and returns a list of
// problems (empty means clean):
//
//   - every block referenced by an allocated inode is marked allocated and
//     referenced exactly once
//   - every allocated data block is referenced by some inode
//   - every directory entry points at an allocated inode
//   - link counts match the number of directory references
//   - every allocated inode is reachable from the root
func (fs *FS) Check() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	var problems []string
	blockRefs := make(map[uint32]int)
	linkRefs := make(map[Ino]int)
	reachable := make(map[Ino]bool)

	// Pass 1: walk every allocated inode's block tree.
	for i := uint32(1); i < fs.sb.NInodes; i++ {
		used, err := fs.bmapTest(inoBitmap, i)
		if err != nil {
			return nil, err
		}
		din, err := fs.ic.get(Ino(i))
		if err != nil {
			return nil, err
		}
		if used != (din.Type != TypeFree) {
			problems = append(problems, fmt.Sprintf("inode %d: bitmap=%v but type=%v", i, used, din.Type))
			continue
		}
		if !used {
			continue
		}
		if err := fs.walkBlocks(&din, func(bn uint32) { blockRefs[bn]++ }); err != nil {
			return nil, err
		}
	}

	// Pass 2: compare block references to the bitmap.
	for bn, n := range blockRefs {
		if n > 1 {
			problems = append(problems, fmt.Sprintf("block %d: referenced %d times", bn, n))
		}
		used, err := fs.bmapTest(blkBitmap, bn)
		if err != nil {
			return nil, err
		}
		if !used {
			problems = append(problems, fmt.Sprintf("block %d: referenced but marked free", bn))
		}
	}
	for bn := fs.sb.DataStart; bn < fs.sb.NBlocks; bn++ {
		used, err := fs.bmapTest(blkBitmap, bn)
		if err != nil {
			return nil, err
		}
		if used && blockRefs[bn] == 0 {
			problems = append(problems, fmt.Sprintf("block %d: marked allocated but unreferenced", bn))
		}
	}

	// Pass 3: walk the directory tree from the root.
	var walk func(dir Ino) error
	walk = func(dir Ino) error {
		if reachable[dir] {
			return nil
		}
		reachable[dir] = true
		ents := make([]Dirent, 0, 8)
		if err := fs.dirScanLocked(dir, func(_ uint64, ino Ino, name string) bool {
			ents = append(ents, Dirent{Name: name, Ino: ino})
			return false
		}); err != nil {
			return err
		}
		for _, e := range ents {
			din, err := fs.ic.get(e.Ino)
			if err != nil {
				return err
			}
			if din.Type == TypeFree {
				problems = append(problems, fmt.Sprintf("dir %d: entry %q points at free inode %d", dir, e.Name, e.Ino))
				continue
			}
			switch e.Name {
			case ".":
				if e.Ino != dir {
					problems = append(problems, fmt.Sprintf("dir %d: \".\" points at %d", dir, e.Ino))
				}
				linkRefs[dir]++
			case "..":
				linkRefs[e.Ino]++
			default:
				linkRefs[e.Ino]++
				if din.Type == TypeDir {
					if err := walk(e.Ino); err != nil {
						return err
					}
				} else {
					reachable[e.Ino] = true
				}
			}
		}
		return nil
	}
	if err := walk(rootIno); err != nil {
		return nil, err
	}

	// Pass 4: link counts and reachability.
	for i := uint32(1); i < fs.sb.NInodes; i++ {
		din, err := fs.ic.get(Ino(i))
		if err != nil {
			return nil, err
		}
		if din.Type == TypeFree {
			continue
		}
		if got, want := din.Nlink, uint16(linkRefs[Ino(i)]); got != want {
			problems = append(problems, fmt.Sprintf("%s: nlink=%d but %d references", din.debugString(Ino(i)), got, want))
		}
		if !reachable[Ino(i)] {
			problems = append(problems, fmt.Sprintf("%s: unreachable from root", din.debugString(Ino(i))))
		}
	}
	return problems, nil
}

// walkBlocks calls fn for every device block owned by the inode, including
// indirect blocks themselves.
func (fs *FS) walkBlocks(din *dinode, fn func(bn uint32)) error {
	for _, bn := range din.Direct {
		if bn != 0 {
			fn(bn)
		}
	}
	if din.Indirect != 0 {
		fn(din.Indirect)
		if err := fs.walkIndirect(din.Indirect, fn); err != nil {
			return err
		}
	}
	if din.DblIndirect != 0 {
		fn(din.DblIndirect)
		blk, err := fs.bc.read(din.DblIndirect)
		if err != nil {
			return err
		}
		for i := 0; i < PtrsPerBlock; i++ {
			mid := binary.BigEndian.Uint32(blk[4*i:])
			if mid == 0 {
				continue
			}
			fn(mid)
			if err := fs.walkIndirect(mid, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

func (fs *FS) walkIndirect(ibn uint32, fn func(bn uint32)) error {
	blk, err := fs.bc.read(ibn)
	if err != nil {
		return err
	}
	for i := 0; i < PtrsPerBlock; i++ {
		if bn := binary.BigEndian.Uint32(blk[4*i:]); bn != 0 {
			fn(bn)
		}
	}
	return nil
}
