#!/bin/sh
# ci.sh — the single CI gate for the repository.
#
# Runs, in order: build, ficusvet (repo-specific static analysis), go vet,
# the race-enabled test suite, and the suite again with runtime invariants
# armed (FICUS_INVARIANTS=1).  Any failure stops the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> ficusvet -json ./..."
# Hard gate over the whole module (cmd/ included): exit 1 means findings,
# exit 2 means the gate itself failed to load the module — both stop CI.
# JSON keeps the findings machine-readable for annotation tooling.
if ! go run ./cmd/ficusvet -json ./... > /tmp/ficusvet.json; then
	cat /tmp/ficusvet.json
	echo "ficusvet gate failed" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./internal/recon ./internal/repl"
go test -race -count=1 ./internal/recon ./internal/repl

echo "==> go test -race ./internal/core ./internal/physical"
go test -race -count=1 ./internal/core ./internal/physical

echo "==> go test -race (repair daemon / propagation interleaving)"
go test -race -count=1 -run 'TestRepair|TestPropagat' ./internal/recon ./internal/physical ./internal/repl ./internal/sim

echo "==> go test -race (scrubber path)"
go test -race -count=1 -run 'TestScrub|TestJournalCompactionCrashSweep|TestRepair' ./internal/physical ./internal/recon ./internal/disk

echo "==> go test -race (block store / delta propagation)"
go test -race -count=1 -run 'TestBlock|TestDelta|TestPool|TestCodecV3|TestPullBatchDelta|TestCheckReportsDangling' ./internal/physical ./internal/repl ./internal/recon ./internal/core

echo "==> go test -race (slow-peer plane: deadlines, hedging, backpressure)"
go test -race -count=1 -run 'TestHedge|TestSlowShed|TestTickBudget|TestPackWaves|TestPropagateHedgedDeterministic|TestDeadline|TestLatency|TestHang|TestSlow' ./internal/recon ./internal/retry ./internal/simnet

echo "==> go test -race (gossip plane: relay, suppression, scheduler)"
go test -race -count=1 -run 'TestGossip|TestRumor|TestScheduler|TestLinkDatagram|TestDatagramBytes' ./internal/core ./internal/recon ./internal/simnet

echo "==> bench smoke: E13 delta propagation"
go test -count=1 -run 'xxx' -bench 'BenchmarkE13DeltaPropagation' -benchtime 1x .

echo "==> bench smoke: E14 hedged pulls"
go test -count=1 -run 'xxx' -bench 'BenchmarkE14HedgedPulls' -benchtime 1x .

echo "==> bench smoke: E15 gossip scaling (small n)"
go test -count=1 -run 'xxx' -bench 'E15GossipScale/(gossip|flat)/n=(8|32)$' -benchtime 1x .

echo "==> go test -race ./..."
go test -race ./...

echo "==> FICUS_INVARIANTS=1 go test ./..."
FICUS_INVARIANTS=1 go test -count=1 ./...

echo "==> make chaos-crash"
FICUS_INVARIANTS=1 go test -race -count=1 -run 'TestChaosCrashRestartConvergence' .

echo "==> make chaos-scrub"
FICUS_INVARIANTS=1 go test -race -count=1 -run 'TestChaosScrubConvergence' .

echo "==> make chaos-slow"
FICUS_INVARIANTS=1 go test -race -count=1 -run 'TestChaosSlowPeerConvergence' .

echo "==> make chaos-gossip"
FICUS_INVARIANTS=1 go test -race -count=1 -timeout 2400s -run 'TestChaosGossipChurnConvergence' .

echo "==> ci gate passed"
