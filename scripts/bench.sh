#!/bin/sh
# bench.sh — regenerate the committed benchmark records:
#   BENCH_PR3.json — batched propagation (E10) and repl wire-codec micros.
#   BENCH_PR9.json — hedged-pull tail latency (E14): p50/p99 pull ticks
#                    with hedging on vs off over a slow, spiky link.
#
# E10 runs a fixed small iteration count (each pass is a full 256-file
# propagation round on a 4-host cluster — the counting metrics are exact and
# deterministic, only ns/op varies); the codec microbenchmarks use the normal
# time-based iteration so ns/op is meaningful.
set -eu

cd "$(dirname "$0")/.."

out="BENCH_PR3.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench BenchmarkE10 -benchtime 3x ."
go test -run '^$' -bench 'BenchmarkE10' -benchtime 3x . | tee -a "$tmp"

echo "==> go test -bench BenchmarkCodec ./internal/repl"
go test -run '^$' -bench 'BenchmarkCodec' ./internal/repl | tee -a "$tmp"

awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; sep = "" }
/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
    for (i = 3; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
    printf "}"
    sep = ",\n"
}
END { print ""; print "  ]"; print "}" }
' "$tmp" > "$out"

echo "==> wrote $out"

out9="BENCH_PR9.json"
tmp9="$(mktemp)"
trap 'rm -f "$tmp" "$tmp9"' EXIT

echo "==> go test -bench BenchmarkE14 -benchtime 1x ."
# One iteration is 128 full write→propagate rounds per variant; every
# latency draw is virtual ticks from the seeded simnet RNG, so the reported
# percentiles are exact and reproducible — only ns/op varies run to run.
go test -run '^$' -bench 'BenchmarkE14' -benchtime 1x . | tee -a "$tmp9"

awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; sep = "" }
/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
    for (i = 3; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
    printf "}"
    sep = ",\n"
}
END { print ""; print "  ]"; print "}" }
' "$tmp9" > "$out9"

echo "==> wrote $out9"

out10="BENCH_PR10.json"
tmp10="$(mktemp)"
trap 'rm -f "$tmp" "$tmp9" "$tmp10"' EXIT

echo "==> go test -bench BenchmarkE15 -benchtime 1x ."
# Gossip vs flat notification at n = 8..256: one iteration per variant writes
# 4 files and converges the cluster.  The per-update datagram counts come off
# the seeded simnet, so they are exact; only ns/op varies run to run.
go test -run '^$' -bench 'BenchmarkE15' -benchtime 1x -timeout 1200s . | tee -a "$tmp10"

awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; sep = "" }
/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
    for (i = 3; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
    printf "}"
    sep = ",\n"
}
END { print ""; print "  ]"; print "}" }
' "$tmp10" > "$out10"

echo "==> wrote $out10"
