#!/bin/sh
# bench.sh — regenerate BENCH_PR3.json: the batched-propagation experiment
# (E10) and the repl wire-codec microbenchmarks.
#
# E10 runs a fixed small iteration count (each pass is a full 256-file
# propagation round on a 4-host cluster — the counting metrics are exact and
# deterministic, only ns/op varies); the codec microbenchmarks use the normal
# time-based iteration so ns/op is meaningful.
set -eu

cd "$(dirname "$0")/.."

out="BENCH_PR3.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench BenchmarkE10 -benchtime 3x ."
go test -run '^$' -bench 'BenchmarkE10' -benchtime 3x . | tee -a "$tmp"

echo "==> go test -bench BenchmarkCodec ./internal/repl"
go test -run '^$' -bench 'BenchmarkCodec' ./internal/repl | tee -a "$tmp"

awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; sep = "" }
/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
    for (i = 3; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
    printf "}"
    sep = ",\n"
}
END { print ""; print "  ]"; print "}" }
' "$tmp" > "$out"

echo "==> wrote $out"
