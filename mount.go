package ficus

import (
	"errors"
	"io"
	"io/fs"
	"sort"
	"sync"

	"repro/internal/vnode"
)

// Mount is a path-based view of one volume from one host.  Paths are
// slash-separated and resolved component by component through the logical
// layer, so graft points are crossed transparently.
type Mount struct {
	root vnode.Vnode
}

// Errors surfaced by Mount operations (errors.Is-compatible with the
// underlying layer errors).
var (
	// ErrNotExist mirrors fs.ErrNotExist semantics.
	ErrNotExist = vnode.ENOENT
	// ErrExist mirrors fs.ErrExist semantics.
	ErrExist = vnode.EEXIST
	// ErrUnavailable reports that no replica of the file is accessible.
	ErrUnavailable = vnode.EUNAVAIL
	// ErrConflict reports a replica update conflict.
	ErrConflict = vnode.ECONFL
)

// FileInfo describes a file, directory, or symlink.
type FileInfo struct {
	Name  string
	Size  uint64
	IsDir bool
	Mode  uint16
	// FileID is the stable Ficus identity of the file.
	FileID string
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// Root exposes the underlying root vnode (for advanced composition).
func (m *Mount) Root() vnode.Vnode { return m.root }

func (m *Mount) walk(path string) (vnode.Vnode, error) {
	return vnode.Walk(m.root, path)
}

// Stat describes the file at path.
func (m *Mount) Stat(path string) (FileInfo, error) {
	v, err := m.walk(path)
	if err != nil {
		return FileInfo{}, err
	}
	a, err := v.Getattr()
	if err != nil {
		return FileInfo{}, err
	}
	parts := vnode.SplitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return FileInfo{
		Name:   name,
		Size:   a.Size,
		IsDir:  a.Type == vnode.VDir,
		Mode:   a.Mode,
		FileID: a.FileID,
	}, nil
}

// Mkdir creates one directory.
func (m *Mount) Mkdir(path string) error {
	parent, name, err := vnode.WalkParent(m.root, path)
	if err != nil {
		return err
	}
	_, err = parent.Mkdir(name)
	return err
}

// MkdirAll creates every missing directory along path.
func (m *Mount) MkdirAll(path string) error {
	_, err := vnode.MkdirAll(m.root, path)
	return err
}

// WriteFile creates (or truncates) the file at path with data, bracketed by
// Open/Close so the physical layer's open bookkeeping is exercised exactly
// as the system-call layer would.
func (m *Mount) WriteFile(path string, data []byte) error {
	parent, name, err := vnode.WalkParent(m.root, path)
	if err != nil {
		return err
	}
	f, err := parent.Create(name, false)
	if err != nil {
		return err
	}
	if err := f.Open(vnode.OpenWrite); err != nil {
		return err
	}
	werr := vnode.WriteFile(f, data)
	cerr := f.Close(vnode.OpenWrite)
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadFile returns the contents of the file at path.
func (m *Mount) ReadFile(path string) ([]byte, error) {
	f, err := m.walk(path)
	if err != nil {
		return nil, err
	}
	if err := f.Open(vnode.OpenRead); err != nil {
		return nil, err
	}
	data, rerr := vnode.ReadFile(f)
	cerr := f.Close(vnode.OpenRead)
	if rerr != nil {
		return nil, rerr
	}
	return data, cerr
}

// Remove unlinks the file at path.
func (m *Mount) Remove(path string) error {
	parent, name, err := vnode.WalkParent(m.root, path)
	if err != nil {
		return err
	}
	return parent.Remove(name)
}

// Rmdir removes the empty directory at path.
func (m *Mount) Rmdir(path string) error {
	parent, name, err := vnode.WalkParent(m.root, path)
	if err != nil {
		return err
	}
	return parent.Rmdir(name)
}

// Rename moves oldPath to newPath (within this volume).
func (m *Mount) Rename(oldPath, newPath string) error {
	sp, sname, err := vnode.WalkParent(m.root, oldPath)
	if err != nil {
		return err
	}
	dp, dname, err := vnode.WalkParent(m.root, newPath)
	if err != nil {
		return err
	}
	return sp.Rename(sname, dp, dname)
}

// Link creates an additional name for the file at target in the same
// directory (Ficus names form a DAG; cross-directory hard links are not
// supported by the physical layer).
func (m *Mount) Link(target, newPath string) error {
	tv, err := m.walk(target)
	if err != nil {
		return err
	}
	parent, name, err := vnode.WalkParent(m.root, newPath)
	if err != nil {
		return err
	}
	return parent.Link(name, tv)
}

// Symlink creates a symbolic link at path pointing to target.
func (m *Mount) Symlink(target, path string) error {
	parent, name, err := vnode.WalkParent(m.root, path)
	if err != nil {
		return err
	}
	return parent.Symlink(name, target)
}

// Readlink returns a symlink's target.
func (m *Mount) Readlink(path string) (string, error) {
	v, err := m.walk(path)
	if err != nil {
		return "", err
	}
	return v.Readlink()
}

// ReadDir lists the directory at path, sorted by name.
func (m *Mount) ReadDir(path string) ([]DirEntry, error) {
	v, err := m.walk(path)
	if err != nil {
		return nil, err
	}
	ents, err := v.Readdir()
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(ents))
	for i, e := range ents {
		out[i] = DirEntry{Name: e.Name, IsDir: e.Type == vnode.VDir}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// OpenFlag selects an open mode.
type OpenFlag int

// Open modes.
const (
	ReadOnly OpenFlag = 1 << iota
	WriteOnly
	Create
	Truncate
)

// ReadWrite combines both access modes.
const ReadWrite = ReadOnly | WriteOnly

// Open opens the file at path and returns a File with os.File-like
// semantics (io.Reader, io.Writer, io.Seeker, io.Closer, io.ReaderAt,
// io.WriterAt).
func (m *Mount) Open(path string, flags OpenFlag) (*File, error) {
	var v vnode.Vnode
	if flags&Create != 0 {
		parent, name, err := vnode.WalkParent(m.root, path)
		if err != nil {
			return nil, err
		}
		v, err = parent.Create(name, false)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		v, err = m.walk(path)
		if err != nil {
			return nil, err
		}
	}
	var of vnode.OpenFlags
	if flags&ReadOnly != 0 {
		of |= vnode.OpenRead
	}
	if flags&WriteOnly != 0 {
		of |= vnode.OpenWrite
	}
	if err := v.Open(of); err != nil {
		return nil, err
	}
	if flags&Truncate != 0 {
		if err := v.Truncate(0); err != nil {
			_ = v.Close(of)
			return nil, err
		}
	}
	return &File{v: v, flags: of}, nil
}

// File is an open Ficus file with a cursor.
type File struct {
	mu     sync.Mutex
	v      vnode.Vnode
	off    int64
	flags  vnode.OpenFlags
	closed bool
}

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	n, err := f.v.ReadAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	n, err := f.v.WriteAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.v.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (f *File) WriteAt(p []byte, off int64) (int, error) { return f.v.WriteAt(p, off) }

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		a, err := f.v.Getattr()
		if err != nil {
			return 0, err
		}
		base = int64(a.Size)
	default:
		return 0, errors.New("ficus: bad whence")
	}
	if base+offset < 0 {
		return 0, errors.New("ficus: negative position")
	}
	f.off = base + offset
	return f.off, nil
}

// Truncate sets the file's length.
func (f *File) Truncate(size uint64) error { return f.v.Truncate(size) }

// Sync forces the file to stable storage.
func (f *File) Sync() error { return f.v.Fsync() }

// Close releases the open (reaching the physical layer's open bookkeeping,
// over NFS via the lookup encoding).
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return f.v.Close(f.flags)
}
