// Command ficusvet runs the repo-specific static analyzers over the module
// (see internal/analysis).  Like go vet it prints one line per finding and
// exits nonzero when anything is flagged; "make lint" and "make check" run
// it as a gate.
//
// Usage:
//
//	ficusvet [-list] [-run name1,name2] [patterns ...]
//
// Patterns default to ./... (the whole module, testdata excluded).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzers to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(*run)
		if err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	cwd, _ := os.Getwd()
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ficusvet:", err)
	os.Exit(1)
}
