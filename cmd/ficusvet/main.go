// Command ficusvet runs the repo-specific static analyzers over the
// module.  See internal/analysis for the analyzer catalogue.
//
// Exit codes: 0 when the tree is clean, 1 when findings were reported,
// 2 when the module could not be loaded or analyzed at all — so CI can
// distinguish "code has findings" from "the gate itself is broken".
//
// Usage:
//
//	ficusvet [-list] [-run name,name] [-json] [-fix [-diff]] [patterns]
//
// Patterns default to ./... (the whole module, testdata excluded).
// -json emits one JSON object with the findings for editors and CI.
// -fix applies every suggested fix in place; -fix -diff prints the
// unified diff instead of writing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitLoadFail = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("ficusvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list analyzers and exit")
	only := flags.String("run", "", "comma-separated analyzers to run (default: all)")
	asJSON := flags.Bool("json", false, "emit findings as JSON")
	fix := flags.Bool("fix", false, "apply suggested fixes in place")
	diff := flags.Bool("diff", false, "with -fix: print a unified diff instead of writing files")
	if err := flags.Parse(args); err != nil {
		return exitLoadFail
	}

	loadFail := func(err error) int {
		fmt.Fprintln(stderr, "ficusvet:", err)
		return exitLoadFail
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			return loadFail(err)
		}
	}

	ld, err := analysis.NewLoader(".")
	if err != nil {
		return loadFail(err)
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return loadFail(err)
	}

	diags := analysis.Run(pkgs, analyzers)

	if *fix {
		fixed, err := analysis.ApplyFixes(diags)
		if err != nil {
			return loadFail(err)
		}
		for _, f := range fixed {
			if *diff {
				fmt.Fprint(stdout, analysis.UnifiedDiff(relPath(ld, f.Path), f.Old, f.New))
				continue
			}
			if err := os.WriteFile(f.Path, f.New, 0o644); err != nil {
				return loadFail(err)
			}
			fmt.Fprintf(stdout, "fixed %s\n", relPath(ld, f.Path))
		}
	}

	if *asJSON {
		out := struct {
			Findings []analysis.Diagnostic
			Count    int
		}{Findings: relDiags(ld, diags), Count: len(diags)}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			return loadFail(err)
		}
	} else {
		for _, d := range relDiags(ld, diags) {
			fmt.Fprintln(stdout, d.String())
		}
	}

	if len(diags) > 0 {
		return exitFindings
	}
	return exitClean
}

// relDiags rewrites absolute file names relative to the module root for
// stable, readable output.
func relDiags(ld *analysis.Loader, diags []analysis.Diagnostic) []analysis.Diagnostic {
	out := make([]analysis.Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos.Filename = relPath(ld, d.Pos.Filename)
		out[i] = d
	}
	return out
}

func relPath(ld *analysis.Loader, path string) string {
	if rel, err := filepath.Rel(ld.ModRoot(), path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
