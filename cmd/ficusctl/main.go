// Command ficusctl drives a simulated Ficus cluster from a command script,
// for poking at replication, partitions, reconciliation and grafting by
// hand.  Commands are read from stdin (or a file via -f), one per line:
//
//	write <host> <path> <contents...>    create/overwrite a file
//	read <host> <path>                   print a file
//	ls <host> <path>                     list a directory
//	mkdir <host> <path>                  create a directory
//	rm <host> <path>                     remove a file
//	mv <host> <old> <new>                rename
//	partition <group>;<group>            e.g. "partition 0,1;2"
//	heal                                 reconnect everything
//	propagate                            one propagation-daemon pass
//	reconcile                            one reconciliation pass
//	settle                               reconcile until quiescent
//	conflicts                            list file conflicts
//	resolve <n> <contents...>            resolve conflict #n
//	newvol <host>                        create a volume, prints its id
//	replicate <vol> <host>               add a replica of a volume
//	graft <host> <dir> <name> <vol>      create a graft point
//	volread <host> <vol> <path>          read from a named volume
//	volwrite <host> <vol> <path> <c...>  write into a named volume
//	evict <host> <path>                  drop the local copy, keep the name (§4.1)
//	gc                                   collect tombstones (all replicas reachable)
//	fsck                                 run UFS + Ficus consistency checks
//	stats                                network traffic counters
//	faults <rpc> <reply> [dgloss] [dgdup] [reorder]
//	                                     program the fault plane (rates 0..1)
//	clearfaults                          remove all injected faults
//	latency <base> <jitter> [spikerate] [spiketicks] [hangrate]
//	                                     program the latency plane on every
//	                                     link (virtual ticks; rates 0..1)
//	linklatency <from> <to> <base> <jitter> [spikerate] [spiketicks] [hangrate]
//	                                     latency profile for one directed link
//	hang <host>                          RPCs to the host run but never answer
//	unhang <host>                        undo hang
//	slowcfg <deadline> <slowafter> <hedgeafter> [tickbudget] [inflight]
//	                                     per-RPC deadlines, Slow threshold,
//	                                     hedged pulls, pass backpressure
//	gossipcfg <fanout> <ttl> [reconpeers]
//	                                     epidemic update notification: rumor
//	                                     fanout and relay hop budget, plus the
//	                                     anti-entropy per-pass peer budget
//	                                     (fanout 0 = flat multicast)
//	gossip [host]                        gossip-plane counters: rumors
//	                                     originated/relayed/suppressed and the
//	                                     configured fanout and TTL
//	peers [--stale] [host]               per-host peer view; with --stale, the
//	                                     anti-entropy scheduler's current
//	                                     priority order (stalest first)
//	health                               per-peer health state, latency EWMA,
//	                                     deadline misses and hedge counters
//	crash <host>                         power-fail a host (disks survive)
//	restart <host>                       remount a crashed host from its disks
//	pending                              dump each replica's new-version cache
//	                                     and per-peer health
//	diskfaults <host> <read> <write> [creadrate] [cwriterate]
//	                                     transient disk I/O error rates and
//	                                     silent-corruption rates (0..1)
//	bitrot <host> <path> <off>           silently flip a stored data bit
//	scrub [host]                         one integrity pass (verify + repair);
//	                                     all hosts when no host given
//	integrity [host]                     per-host corruption/repair counters
//	blocks [host]                        per-host block pool and delta-transfer
//	                                     counters (dedup savings)
//	# comment                            ignored
//
// Example:
//
//	echo 'write 0 /hello world
//	partition 0;1,2
//	write 0 /hello from-zero
//	write 1 /hello from-one
//	heal
//	settle
//	conflicts' | ficusctl -hosts 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	ficus "repro"
)

func main() {
	hosts := flag.Int("hosts", 3, "number of hosts in the cluster")
	seed := flag.Int64("seed", 1, "simulation seed")
	file := flag.String("f", "", "command script (default stdin)")
	flag.Parse()

	cluster, err := ficus.NewCluster(*hosts, ficus.WithSeed(*seed))
	if err != nil {
		fatal("create cluster: %v", err)
	}
	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	ctl := &controller{cluster: cluster, vols: map[string]ficus.Volume{}}
	scanner := bufio.NewScanner(in)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := ctl.exec(text); err != nil {
			fmt.Printf("line %d (%s): error: %v\n", line, text, err)
		}
	}
	if err := scanner.Err(); err != nil {
		fatal("read script: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ficusctl: "+format+"\n", args...)
	os.Exit(1)
}

type controller struct {
	cluster *ficus.Cluster
	vols    map[string]ficus.Volume
}

func (c *controller) host(arg string) (int, error) {
	h, err := strconv.Atoi(arg)
	if err != nil || h < 0 || h >= c.cluster.NumHosts() {
		return 0, fmt.Errorf("bad host %q", arg)
	}
	return h, nil
}

func (c *controller) mount(hostArg string) (*ficus.Mount, int, error) {
	h, err := c.host(hostArg)
	if err != nil {
		return nil, 0, err
	}
	m, err := c.cluster.Mount(h)
	return m, h, err
}

func (c *controller) volume(name string) (ficus.Volume, error) {
	if v, ok := c.vols[name]; ok {
		return v, nil
	}
	return ficus.Volume{}, fmt.Errorf("unknown volume %q (create with newvol)", name)
}

func (c *controller) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d arguments", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "write":
		if err := need(3); err != nil {
			return err
		}
		m, _, err := c.mount(args[0])
		if err != nil {
			return err
		}
		return m.WriteFile(args[1], []byte(strings.Join(args[2:], " ")))
	case "read":
		if err := need(2); err != nil {
			return err
		}
		m, h, err := c.mount(args[0])
		if err != nil {
			return err
		}
		data, err := m.ReadFile(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("host %d %s: %q\n", h, args[1], data)
		return nil
	case "ls":
		if err := need(2); err != nil {
			return err
		}
		m, h, err := c.mount(args[0])
		if err != nil {
			return err
		}
		ents, err := m.ReadDir(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("host %d %s:", h, args[1])
		for _, e := range ents {
			suffix := ""
			if e.IsDir {
				suffix = "/"
			}
			fmt.Printf(" %s%s", e.Name, suffix)
		}
		fmt.Println()
		return nil
	case "mkdir":
		if err := need(2); err != nil {
			return err
		}
		m, _, err := c.mount(args[0])
		if err != nil {
			return err
		}
		return m.MkdirAll(args[1])
	case "rm":
		if err := need(2); err != nil {
			return err
		}
		m, _, err := c.mount(args[0])
		if err != nil {
			return err
		}
		return m.Remove(args[1])
	case "mv":
		if err := need(3); err != nil {
			return err
		}
		m, _, err := c.mount(args[0])
		if err != nil {
			return err
		}
		return m.Rename(args[1], args[2])
	case "partition":
		if err := need(1); err != nil {
			return err
		}
		var groups [][]int
		for _, g := range strings.Split(args[0], ";") {
			var group []int
			for _, s := range strings.Split(g, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return fmt.Errorf("bad partition spec %q", args[0])
				}
				group = append(group, n)
			}
			groups = append(groups, group)
		}
		c.cluster.Partition(groups...)
		fmt.Printf("partitioned: %s\n", args[0])
		return nil
	case "heal":
		c.cluster.Heal()
		fmt.Println("healed")
		return nil
	case "propagate":
		s, err := c.cluster.Propagate()
		if err != nil {
			return err
		}
		fmt.Printf("propagated: pulled %d file versions\n", s.FilesPulled)
		return nil
	case "reconcile":
		s, err := c.cluster.Reconcile()
		if err != nil {
			return err
		}
		fmt.Printf("reconciled: adopted %d entries, pulled %d files, %d conflicts\n",
			s.EntriesAdopted, s.FilesPulled, s.Conflicts)
		return nil
	case "settle":
		if err := c.cluster.Settle(20); err != nil {
			return err
		}
		fmt.Println("settled (quiescent)")
		return nil
	case "conflicts":
		confs := c.cluster.Conflicts()
		if len(confs) == 0 {
			fmt.Println("no conflicts")
			return nil
		}
		for i, conf := range confs {
			fmt.Printf("#%d host=%d file=%s local=%s remote=%s: %s\n",
				i, conf.Host, conf.FileID, conf.LocalVV, conf.RemoteVV, conf.Note)
		}
		return nil
	case "resolve":
		if err := need(2); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		confs := c.cluster.Conflicts()
		if n < 0 || n >= len(confs) {
			return fmt.Errorf("no conflict #%d", n)
		}
		if err := c.cluster.Resolve(confs[n], []byte(strings.Join(args[1:], " "))); err != nil {
			return err
		}
		fmt.Printf("resolved #%d\n", n)
		return nil
	case "newvol":
		if err := need(1); err != nil {
			return err
		}
		h, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		v, err := c.cluster.NewVolume(h)
		if err != nil {
			return err
		}
		c.vols[v.String()] = v
		fmt.Printf("volume %s created on host %d\n", v, h)
		return nil
	case "replicate":
		if err := need(2); err != nil {
			return err
		}
		v, err := c.volume(args[0])
		if err != nil {
			return err
		}
		h, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if err := c.cluster.ReplicateVolume(v, h); err != nil {
			return err
		}
		fmt.Printf("volume %s replicated to host %d\n", v, h)
		return nil
	case "graft":
		if err := need(4); err != nil {
			return err
		}
		h, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		v, err := c.volume(args[3])
		if err != nil {
			return err
		}
		if err := c.cluster.Graft(h, args[1], args[2], v); err != nil {
			return err
		}
		fmt.Printf("grafted %s at %s/%s\n", v, args[1], args[2])
		return nil
	case "volread":
		if err := need(3); err != nil {
			return err
		}
		h, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		v, err := c.volume(args[1])
		if err != nil {
			return err
		}
		m, err := c.cluster.MountVolume(h, v)
		if err != nil {
			return err
		}
		data, err := m.ReadFile(args[2])
		if err != nil {
			return err
		}
		fmt.Printf("host %d %s:%s: %q\n", h, v, args[2], data)
		return nil
	case "volwrite":
		if err := need(4); err != nil {
			return err
		}
		h, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		v, err := c.volume(args[1])
		if err != nil {
			return err
		}
		m, err := c.cluster.MountVolume(h, v)
		if err != nil {
			return err
		}
		return m.WriteFile(args[2], []byte(strings.Join(args[3:], " ")))
	case "evict":
		if err := need(2); err != nil {
			return err
		}
		h, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		if err := c.cluster.Evict(h, args[1]); err != nil {
			return err
		}
		fmt.Printf("host %d no longer stores %s locally (name kept)\n", h, args[1])
		return nil
	case "gc":
		n, err := c.cluster.CollectGarbage()
		if err != nil {
			return err
		}
		fmt.Printf("collected %d tombstones\n", n)
		return nil
	case "fsck":
		probs, err := c.cluster.Fsck()
		if err != nil {
			return err
		}
		if len(probs) == 0 {
			fmt.Println("all replicas clean")
			return nil
		}
		for _, p := range probs {
			fmt.Println(p)
		}
		return nil
	case "stats":
		s := c.cluster.NetworkStats()
		fmt.Printf("rpcs=%d (failed %d, %d bytes) datagrams=%d (delivered %d, dropped %d)\n",
			s.RPCs, s.RPCFailures, s.RPCBytes, s.Datagrams, s.DatagramsDelivered, s.DatagramsDropped)
		fmt.Printf("faults: rpc-injected=%d replies-lost=%d datagrams-duplicated=%d multicasts-reordered=%d\n",
			s.RPCFaultsInjected, s.RPCRepliesLost, s.DatagramsDuplicated, s.MulticastsReordered)
		fmt.Printf("latency: hangs=%d deadline-misses=%d spikes=%d rpc-virtual-ticks=%d\n",
			s.RPCHangs, s.RPCDeadlineMisses, s.RPCLatencySpikes, s.RPCVirtualTicks)
		return nil
	case "faults":
		if err := need(2); err != nil {
			return err
		}
		rates := make([]float64, 5)
		for i, a := range args {
			if i >= len(rates) {
				return fmt.Errorf("faults takes at most %d rates", len(rates))
			}
			r, err := strconv.ParseFloat(a, 64)
			if err != nil || r < 0 || r > 1 {
				return fmt.Errorf("bad rate %q (want 0..1)", a)
			}
			rates[i] = r
		}
		c.cluster.InjectFaults(ficus.FaultConfig{
			RPCFailRate:      rates[0],
			ReplyLossRate:    rates[1],
			DatagramLossRate: rates[2],
			DatagramDupRate:  rates[3],
			ReorderRate:      rates[4],
		})
		return nil
	case "clearfaults":
		c.cluster.ClearFaults()
		return nil
	case "latency", "linklatency":
		nHosts := 0
		if cmd == "linklatency" {
			nHosts = 2
		}
		if err := need(nHosts + 2); err != nil {
			return err
		}
		var from, to int
		var err error
		if cmd == "linklatency" {
			if from, err = c.host(args[0]); err != nil {
				return err
			}
			if to, err = c.host(args[1]); err != nil {
				return err
			}
		}
		nums := args[nHosts:]
		if len(nums) > 5 {
			return fmt.Errorf("%s takes at most 5 values", cmd)
		}
		var l ficus.LatencyConfig
		ticks := []*uint64{&l.BaseTicks, &l.JitterTicks, nil, &l.SpikeTicks, nil}
		rates := []*float64{nil, nil, &l.SpikeRate, nil, &l.HangRate}
		for i, a := range nums {
			if ticks[i] != nil {
				v, err := strconv.ParseUint(a, 10, 64)
				if err != nil {
					return fmt.Errorf("bad tick count %q", a)
				}
				*ticks[i] = v
			} else {
				r, err := strconv.ParseFloat(a, 64)
				if err != nil || r < 0 || r > 1 {
					return fmt.Errorf("bad rate %q (want 0..1)", a)
				}
				*rates[i] = r
			}
		}
		if cmd == "linklatency" {
			c.cluster.InjectLinkLatency(from, to, l)
		} else {
			c.cluster.InjectLatency(l)
		}
		return nil
	case "hang", "unhang":
		if err := need(1); err != nil {
			return err
		}
		h, err := c.host(args[0])
		if err != nil {
			return err
		}
		if cmd == "hang" {
			c.cluster.HangHost(h)
			fmt.Printf("host %d hung (accepts RPCs, never replies)\n", h)
		} else {
			c.cluster.UnhangHost(h)
			fmt.Printf("host %d answering again\n", h)
		}
		return nil
	case "slowcfg":
		if err := need(3); err != nil {
			return err
		}
		if len(args) > 5 {
			return fmt.Errorf("slowcfg takes at most 5 values")
		}
		vals := make([]uint64, 5)
		for i, a := range args {
			v, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				return fmt.Errorf("bad value %q", a)
			}
			vals[i] = v
		}
		c.cluster.ConfigureSlowPeers(ficus.SlowPeerConfig{
			RPCDeadline:  vals[0],
			SlowAfter:    vals[1],
			HedgeAfter:   vals[2],
			TickBudget:   vals[3],
			PeerInflight: int(vals[4]),
		})
		return nil
	case "gossipcfg":
		if err := need(2); err != nil {
			return err
		}
		if len(args) > 3 {
			return fmt.Errorf("gossipcfg takes at most 3 values")
		}
		vals := make([]int, 3)
		for i, a := range args {
			v, err := strconv.Atoi(a)
			if err != nil || v < 0 {
				return fmt.Errorf("bad value %q", a)
			}
			vals[i] = v
		}
		c.cluster.ConfigureGossip(ficus.GossipConfig{
			Fanout:     vals[0],
			TTL:        vals[1],
			ReconPeers: vals[2],
		})
		if vals[0] == 0 {
			fmt.Println("gossip off: flat multicast notification")
		} else {
			fmt.Printf("gossip on: fanout=%d ttl=%d recon-peers=%d\n", vals[0], vals[1], vals[2])
		}
		return nil
	case "gossip":
		lo, hi := 0, c.cluster.NumHosts()
		if len(args) > 0 {
			h, err := c.host(args[0])
			if err != nil {
				return err
			}
			lo, hi = h, h+1
		}
		cfg := c.cluster.Host(lo).GossipSettings()
		fmt.Printf("gossip config: fanout=%d ttl=%d recon-peers=%d\n",
			cfg.Fanout, cfg.TTL, cfg.ReconPeers)
		for h := lo; h < hi; h++ {
			g := c.cluster.GossipStatsFor(h)
			fmt.Printf("host %d gossip: originated=%d sent=%d relayed=%d accepted=%d suppressed=%d foreign=%d expired=%d\n",
				h, g.RumorsOriginated, g.NoticesSent, g.RumorsRelayed,
				g.RumorsAccepted, g.RumorsSuppressed, g.RumorsForeign, g.RumorsExpired)
		}
		ns := c.cluster.NetworkStats()
		fmt.Printf("cluster gossip: sent=%d relayed=%d accepted=%d suppressed=%d datagram-bytes=%d\n",
			ns.GossipNoticesSent, ns.GossipRelayed, ns.GossipAccepted, ns.GossipSuppressed, ns.DatagramBytes)
		return nil
	case "peers":
		stale := false
		rest := args
		if len(rest) > 0 && rest[0] == "--stale" {
			stale = true
			rest = rest[1:]
		}
		lo, hi := 0, c.cluster.NumHosts()
		if len(rest) > 0 {
			h, err := c.host(rest[0])
			if err != nil {
				return err
			}
			lo, hi = h, h+1
		}
		for h := lo; h < hi; h++ {
			if c.cluster.HostDown(h) {
				fmt.Printf("host %d: down\n", h)
				continue
			}
			if !stale {
				for _, ph := range c.cluster.PeerHealthFor(h) {
					fmt.Printf("host %d sees host %d: %s\n", h, ph.Peer, ph.State)
				}
				continue
			}
			for rank, p := range c.cluster.StalePeersFor(h) {
				fmt.Printf("host %d #%d: host %d replica=%d %s score=%d last-sync=%d last-attempt=%d\n",
					h, rank, p.Peer, p.Replica, p.State, p.Score, p.LastSync, p.LastAttempt)
			}
		}
		return nil
	case "health":
		for h := 0; h < c.cluster.NumHosts(); h++ {
			if c.cluster.HostDown(h) {
				fmt.Printf("host %d: down\n", h)
				continue
			}
			for _, ph := range c.cluster.PeerHealthFor(h) {
				line := fmt.Sprintf("host %d sees host %d: %s fails=%d deadline-misses=%d",
					h, ph.Peer, ph.State, ph.Fails, ph.DeadlineMisses)
				if ph.HasLatency {
					line += fmt.Sprintf(" ewma=%dt", ph.EWMATicks)
				}
				fmt.Println(line)
			}
			ss := c.cluster.SlowStatsFor(h)
			fmt.Printf("host %d propagation: hedges=%d hedge-wins=%d sheds=%d budget-deferred=%d pass-ticks=%d\n",
				h, ss.Hedges, ss.HedgeWins, ss.SlowSheds, ss.BudgetDeferred, ss.PassTicks)
		}
		return nil
	case "crash":
		if err := need(1); err != nil {
			return err
		}
		h, err := c.host(args[0])
		if err != nil {
			return err
		}
		c.cluster.CrashHost(h)
		fmt.Printf("host %d crashed (disks survive; restart to remount)\n", h)
		return nil
	case "restart":
		if err := need(1); err != nil {
			return err
		}
		h, err := c.host(args[0])
		if err != nil {
			return err
		}
		if err := c.cluster.RestartHost(h); err != nil {
			return err
		}
		fmt.Printf("host %d restarted (rescan pending)\n", h)
		return nil
	case "pending":
		for h := 0; h < c.cluster.NumHosts(); h++ {
			if c.cluster.HostDown(h) {
				fmt.Printf("host %d: down\n", h)
				continue
			}
			pvs := c.cluster.PendingVersionsFor(h)
			if len(pvs) == 0 {
				fmt.Printf("host %d: nvc empty\n", h)
			}
			for _, pv := range pvs {
				fmt.Printf("host %d vol=%s replica=%d file=%s origin=%d seen=%d attempts=%d notbefore=%d\n",
					h, pv.Volume, pv.Replica, pv.File, pv.Origin, pv.Seen, pv.Attempts, pv.NotBefore)
			}
			for _, ph := range c.cluster.PeerHealthFor(h) {
				fmt.Printf("host %d sees host %d: %s\n", h, ph.Peer, ph.State)
			}
		}
		return nil
	case "diskfaults":
		if err := need(3); err != nil {
			return err
		}
		h, err := c.host(args[0])
		if err != nil {
			return err
		}
		var rates [4]float64
		if len(args) > 1+len(rates) {
			return fmt.Errorf("diskfaults takes at most %d rates", len(rates))
		}
		for i, a := range args[1:] {
			r, err := strconv.ParseFloat(a, 64)
			if err != nil || r < 0 || r > 1 {
				return fmt.Errorf("bad rate %q (want 0..1)", a)
			}
			rates[i] = r
		}
		c.cluster.InjectDiskFaults(h, ficus.DiskFaultConfig{
			Seed:             1,
			ReadErrRate:      rates[0],
			WriteErrRate:     rates[1],
			CorruptReadRate:  rates[2],
			CorruptWriteRate: rates[3],
		})
		return nil
	case "bitrot":
		if err := need(3); err != nil {
			return err
		}
		h, err := c.host(args[0])
		if err != nil {
			return err
		}
		off, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad offset %q", args[2])
		}
		if err := c.cluster.InjectBitRot(h, args[1], off); err != nil {
			return err
		}
		fmt.Printf("host %d %s: bit flipped at offset %d (silently)\n", h, args[1], off)
		return nil
	case "scrub":
		var s ficus.ScrubStats
		var err error
		if len(args) > 0 {
			var h int
			if h, err = c.host(args[0]); err != nil {
				return err
			}
			s, err = c.cluster.ScrubHost(h)
		} else {
			s, err = c.cluster.Scrub()
		}
		if err != nil {
			return err
		}
		fmt.Printf("scrubbed: verified %d files (%d blocks), resealed %d, corrupt %d, cleared %d\n",
			s.VerifiedFiles, s.VerifiedBlocks, s.Resealed, s.Corrupt, s.Cleared)
		fmt.Printf("repair: attempted %d, repaired %d, deferred %d, gave up %d\n",
			s.RepairAttempts, s.Repaired, s.RepairDeferred, s.GaveUp)
		return nil
	case "integrity":
		lo, hi := 0, c.cluster.NumHosts()
		if len(args) > 0 {
			h, err := c.host(args[0])
			if err != nil {
				return err
			}
			lo, hi = h, h+1
		}
		for h := lo; h < hi; h++ {
			d := c.cluster.DiskStatsFor(h)
			s := c.cluster.IntegrityStatsFor(h)
			fmt.Printf("host %d disk: corrupt-reads=%d corrupt-writes=%d torn=%d\n",
				h, d.CorruptReads, d.CorruptWrites, d.TornWrites)
			fmt.Printf("host %d scrub: scrubbed=%d blocks=%d resealed=%d detected=%d repaired=%d unrepairable=%d quarantined=%d\n",
				h, s.ScrubbedFiles, s.ScrubbedBlocks, s.Resealed, s.CorruptionsDetected,
				s.Repaired, s.Unrepairable, s.Quarantined)
		}
		return nil
	case "blocks":
		lo, hi := 0, c.cluster.NumHosts()
		if len(args) > 0 {
			h, err := c.host(args[0])
			if err != nil {
				return err
			}
			lo, hi = h, h+1
		}
		for h := lo; h < hi; h++ {
			s := c.cluster.BlockStatsFor(h)
			fmt.Printf("host %d pool: blocks=%d bytes=%d sealed=%d orphans=%d bad=%d\n",
				h, s.PoolBlocks, s.PoolBytes, s.ManifestsSealed, s.OrphansReclaimed, s.BadBlocks)
			fmt.Printf("host %d delta: shipped=%d (%d bytes) reused=%d (%d bytes saved)\n",
				h, s.BlocksShipped, s.BytesShipped, s.BlocksReused, s.BytesSaved)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
