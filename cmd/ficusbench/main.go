// Command ficusbench regenerates every table of the reproduction's
// experiment suite (DESIGN.md §4, E1–E9) and prints them in a form directly
// comparable to the claims of the 1990 paper.  Timing numbers are
// wall-clock on the current machine; counting numbers (I/Os, RPCs, pulls,
// availability) are deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/avail"
	"repro/internal/baseline"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/vnode"
)

func main() {
	only := flag.String("only", "", "run a single experiment (e1..e9)")
	trials := flag.Int("trials", 20000, "Monte-Carlo trials for E4")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func(w *tabwriter.Writer) error
	}{
		{"e1", "E1: stack composition (Figures 1-2)", runE1},
		{"e2", "E2: layer crossing cost (§6)", runE2},
		{"e3", "E3: open I/O counts (§6)", runE3},
		{"e4", "E4: availability comparison (§1, §3)", func(w *tabwriter.Writer) error { return runE4(w, *trials) }},
		{"e5", "E5: propagation policy (§3.2)", runE5},
		{"e6", "E6: reconciliation convergence (§3.3)", runE6},
		{"e7", "E7: name budget / open-over-lookup (§2.3)", runE7},
		{"e8", "E8: shadow commit cost (§3.2 fn5)", runE8},
		{"e9", "E9: autografting (§4.4)", runE9},
	}
	for _, e := range experiments {
		if *only != "" && *only != e.id {
			continue
		}
		fmt.Printf("=== %s ===\n", e.name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		if err := e.run(w); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		w.Flush()
		fmt.Println()
	}
}

// timeOp measures the median-ish cost of op over n runs.
func timeOp(n int, op func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

func runE1(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "stack\tns/op\tvs UFS")
	var base time.Duration
	for _, kind := range []exp.StackKind{exp.StackUFS, exp.StackFicusLocal, exp.StackFicusLocalCached, exp.StackFicusNFS, exp.StackFicusTwoRepl} {
		root, err := exp.BuildStack(kind)
		if err != nil {
			return err
		}
		if err := exp.PrepareFile(root); err != nil {
			return err
		}
		d, err := timeOp(2000, func() error { return exp.TouchOp(root) })
		if err != nil {
			return err
		}
		if kind == exp.StackUFS {
			base = d
		}
		fmt.Fprintf(w, "%v\t%d\t%.2fx\n", kind, d.Nanoseconds(), float64(d)/float64(base))
	}
	return nil
}

func runE2(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "interposed null layers\tns/op\tdelta vs 0")
	var base time.Duration
	for _, depth := range []int{0, 1, 2, 4, 8} {
		root, err := exp.BuildNullStack(depth)
		if err != nil {
			return err
		}
		if err := exp.PrepareFile(root); err != nil {
			return err
		}
		d, err := timeOp(5000, func() error { return exp.TouchOp(root) })
		if err != nil {
			return err
		}
		if depth == 0 {
			base = d
		}
		fmt.Fprintf(w, "%d\t%d\t%+d\n", depth, d.Nanoseconds(), (d - base).Nanoseconds())
	}
	return nil
}

func runE3(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "caches\tUFS cold\tFicus cold\textra (paper: 4)\tUFS warm\tFicus warm\textra (paper: 0)")
	for _, caches := range []bool{true, false} {
		r, err := exp.OpenIOCounts(caches)
		if err != nil {
			return err
		}
		label := "on"
		if !caches {
			label = "off (ablation)"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			label, r.UFSColdReads, r.FicusColdReads, r.ColdDelta(),
			r.UFSWarmReads, r.FicusWarmReads, r.WarmDelta())
	}
	return nil
}

func runE4(w *tabwriter.Writer, trials int) error {
	for _, model := range []avail.Model{avail.HostFailures, avail.Partitions} {
		fmt.Fprintf(w, "model=%v\t\t\t\n", model)
		fmt.Fprintln(w, "policy\tn=2\tn=3\tn=5\tn=7")
		ns := []int{2, 3, 5, 7}
		rows := map[string][]float64{}
		var order []string
		for _, n := range ns {
			s := avail.Scenario{
				Replicas: n, Model: model, FailProb: 0.2, Segments: 3,
				Trials: trials, Seed: 42,
			}
			for _, r := range avail.Evaluate(s, baseline.StandardSet(n)) {
				name := normalizePolicy(r.Policy)
				if _, ok := rows[name]; !ok {
					order = append(order, name)
				}
				rows[name] = append(rows[name], r.UpdateAvail)
			}
		}
		for _, name := range order {
			fmt.Fprintf(w, "%s", name)
			for _, v := range rows[name] {
				fmt.Fprintf(w, "\t%.3f", v)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "(update availability; one-copy must dominate every row)\t\t\t")
	}
	return nil
}

// normalizePolicy strips per-n parameters so sweeps line up in one row.
func normalizePolicy(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '(' && i > 0 && name[i-1] == ' ' {
			switch name[:i-1] {
			case "weighted voting", "quorum consensus":
				return name[:i-1]
			}
		}
	}
	return name
}

func runE5(w *tabwriter.Writer) error {
	imm, del, err := exp.PropagationComparison(exp.DefaultPropagationConfig())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "daemon schedule\tpulls\tRPC bytes\tstaleness (step-units)")
	for _, r := range []exp.PropagationRow{imm, del} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", r.Policy, r.Pulls, r.RPCBytes, r.Staleness)
	}
	fmt.Fprintln(w, "(delayed propagation coalesces bursts: fewer pulls, more staleness)\t\t\t")
	return nil
}

func runE6(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "hosts\trounds\tentries adopted\tfiles pulled\tfile conflicts\tname repairs\tconverged")
	for _, hosts := range []int{2, 4, 6} {
		res, err := exp.RunReconcileChurn(hosts, 9, 7)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			res.Hosts, res.Rounds, res.EntriesAdopted, res.FilesPulled,
			res.FileConflicts, res.NameRepairs, res.Converged)
	}
	return nil
}

func runE7(w *tabwriter.Writer) error {
	root, err := exp.BuildStack(exp.StackFicusNFS)
	if err != nil {
		return err
	}
	if err := exp.PrepareFile(root); err != nil {
		return err
	}
	f, err := vnode.Walk(root, "dir/file")
	if err != nil {
		return err
	}
	openClose, err := timeOp(500, func() error {
		if err := f.Open(vnode.OpenRead); err != nil {
			return err
		}
		return f.Close(vnode.OpenRead)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "quantity\tvalue")
	fmt.Fprintf(w, "substrate max name\t255 bytes\n")
	fmt.Fprintf(w, "encoding overhead\t%d bytes\n", 255-logical.MaxName)
	fmt.Fprintf(w, "client name budget (paper: ~200)\t%d bytes\n", logical.MaxName)
	fmt.Fprintf(w, "open+close via lookup over NFS\t%d ns\n", openClose.Nanoseconds())
	return nil
}

func runE8(w *tabwriter.Writer) error {
	rows, err := exp.ShadowCommitCost([]int{1, 4, 16, 64})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "file size (blocks)\tin-place writes\tshadow-commit writes\tamplification")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1fx\n",
			r.FileBlocks, r.InPlaceWrites, r.ShadowWrites,
			float64(r.ShadowWrites)/float64(r.InPlaceWrites))
	}
	return nil
}

func runE9(w *tabwriter.Writer) error {
	res, err := exp.RunAutograft()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "walk through graft point\tRPCs")
	fmt.Fprintf(w, "first (locate + graft)\t%d\n", res.FirstWalkRPCs)
	fmt.Fprintf(w, "warm (graft table hit)\t%d\n", res.WarmWalkRPCs)
	fmt.Fprintf(w, "after pruning (regraft)\t%d\n", res.RegraftRPCs)
	return nil
}
