package ficus

// Whole-system chaos property test: random operations on random hosts
// interleaved with random partitions and heals, then reconciliation.  The
// system's whole-life invariants must survive any such history:
//
//  1. operations only ever fail with "no replica accessible" (never
//     corruption errors) and only while the issuing host is cut off;
//  2. after healing and settling, every host renders the identical
//     namespace (convergence);
//  3. every conflict the owner resolves stays resolved;
//  4. tombstone GC collects without resurrecting anything;
//  5. both consistency checkers (UFS fsck + Ficus check) come back clean
//     on every replica of every host.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/recon"
)

// treeOf renders host i's full namespace (names + file contents; conflict
// files render their FileID only, since their contents legitimately differ
// until resolved).
func treeOf(t testing.TB, c *Cluster, host int, contents bool) string {
	t.Helper()
	m, err := c.Mount(host)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	var walk func(path string)
	walk = func(path string) {
		ents, err := m.ReadDir(path)
		if err != nil {
			t.Fatalf("host %d readdir %s: %v", host, path, err)
		}
		for _, e := range ents {
			full := path + "/" + e.Name
			if e.IsDir {
				lines = append(lines, full+"/")
				walk(full)
				continue
			}
			if contents {
				data, err := m.ReadFile(full)
				if err != nil {
					t.Fatalf("host %d read %s: %v", host, full, err)
				}
				lines = append(lines, fmt.Sprintf("%s=%q", full, data))
			} else {
				lines = append(lines, full)
			}
		}
	}
	walk("")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestChaosConvergenceProperty(t *testing.T) {
	const hosts = 3
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(hosts, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			mounts := make([]*Mount, hosts)
			for i := range mounts {
				if mounts[i], err = c.Mount(i); err != nil {
					t.Fatal(err)
				}
			}
			// tolerate lets an op fail only with availability errors.
			tolerate := func(err error) {
				if err == nil {
					return
				}
				if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotExist) ||
					errors.Is(err, ErrExist) || errors.Is(err, ErrConflict) {
					return
				}
				// "directory not empty" and friends are legitimate outcomes
				// of racing a concurrent namespace; corruption-class errors
				// are not.
				s := err.Error()
				if strings.Contains(s, "not empty") || strings.Contains(s, "is a directory") ||
					strings.Contains(s, "not a directory") || strings.Contains(s, "stale") ||
					strings.Contains(s, "not stored") {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			name := func() string { return fmt.Sprintf("f%d", rng.Intn(12)) }
			dir := func() string { return fmt.Sprintf("d%d", rng.Intn(4)) }

			for step := 0; step < 120; step++ {
				h := rng.Intn(hosts)
				m := mounts[h]
				switch rng.Intn(12) {
				case 0, 1, 2:
					tolerate(m.WriteFile("/"+name(), []byte(fmt.Sprintf("h%d s%d", h, step))))
				case 3:
					tolerate(m.MkdirAll("/" + dir()))
				case 4:
					tolerate(m.WriteFile("/"+dir()+"/"+name(), []byte(fmt.Sprintf("deep h%d", h))))
				case 5:
					tolerate(m.Remove("/" + name()))
				case 6:
					tolerate(m.Rename("/"+name(), "/"+name()))
				case 7:
					_, err := m.ReadFile("/" + name())
					tolerate(err)
				case 8:
					_, err := m.ReadDir("/")
					tolerate(err)
				case 9: // repartition randomly
					switch rng.Intn(3) {
					case 0:
						c.Partition([]int{0}, []int{1, 2})
					case 1:
						c.Partition([]int{0, 1}, []int{2})
					case 2:
						c.Partition([]int{0, 2}, []int{1})
					}
				case 10:
					c.Heal()
				case 11:
					_, err := c.Propagate()
					if err != nil {
						t.Fatalf("propagate: %v", err)
					}
				}
			}

			// Heal and converge.
			c.Heal()
			if err := c.Settle(30); err != nil {
				t.Fatal(err)
			}

			// Invariant 2: identical namespaces (names; contents may differ
			// only on conflicted files).
			ref := treeOf(t, c, 0, false)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, false); got != ref {
					t.Fatalf("namespace diverged between host 0 and host %d:\n--- host 0:\n%s\n--- host %d:\n%s", i, ref, i, got)
				}
			}

			// Invariant 3: resolve every conflict; they stay resolved.
			// Each logical file is resolved ONCE per round (several hosts
			// report the same conflict; issuing a second, independent
			// resolution for the same file would itself be a concurrent
			// update).  The other hosts' reports clear as the resolution
			// propagates.
			for iter := 0; iter < 5 && len(c.Conflicts()) > 0; iter++ {
				resolved := map[string]bool{}
				for _, conf := range c.Conflicts() {
					if resolved[conf.FileID] {
						continue
					}
					resolved[conf.FileID] = true
					if err := c.Resolve(conf, []byte("chaos-resolved")); err != nil {
						t.Fatalf("resolve: %v", err)
					}
				}
				if err := c.Settle(30); err != nil {
					t.Fatal(err)
				}
			}
			if n := len(c.Conflicts()); n != 0 {
				t.Fatalf("%d conflicts survived resolution", n)
			}
			// With conflicts resolved, even contents must agree everywhere.
			refFull := treeOf(t, c, 0, true)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, true); got != refFull {
					t.Fatalf("contents diverged after resolution:\n--- host 0:\n%s\n--- host %d:\n%s", refFull, i, got)
				}
			}

			// Invariant 4: GC collects; nothing resurrects.
			before := refFull
			if _, err := c.CollectGarbage(); err != nil {
				t.Fatalf("gc: %v", err)
			}
			if err := c.Settle(10); err != nil {
				t.Fatal(err)
			}
			if after := treeOf(t, c, 0, true); after != before {
				t.Fatalf("GC changed the visible namespace:\nbefore:\n%s\nafter:\n%s", before, after)
			}

			// Invariant 5: every replica structurally clean.
			probs, err := c.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 0 {
				t.Fatalf("fsck problems:\n%s", strings.Join(probs, "\n"))
			}
		})
	}
}

// TestChaosConvergenceFlakyLinks is the chaos property test with the fault
// plane switched on for the whole run — including final convergence: a
// nonzero RPC fault rate, lost replies (the handler ran, the caller saw
// failure), dropped/duplicated notification datagrams, and reordered
// multicast fan-out.  Retries, per-entry backoff, and the reconciliation
// safety net must still converge every replica to an identical namespace.
func TestChaosConvergenceFlakyLinks(t *testing.T) {
	const hosts = 3
	faults := FaultConfig{
		RPCFailRate:      0.05,
		ReplyLossRate:    0.05,
		DatagramLossRate: 0.25,
		DatagramDupRate:  0.2,
		ReorderRate:      0.5,
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(hosts, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			c.InjectFaults(faults)
			mounts := make([]*Mount, hosts)
			for i := range mounts {
				if mounts[i], err = c.Mount(i); err != nil {
					t.Fatal(err)
				}
			}
			tolerate := func(err error) {
				if err == nil || errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotExist) ||
					errors.Is(err, ErrExist) || errors.Is(err, ErrConflict) {
					return
				}
				s := err.Error()
				if strings.Contains(s, "not empty") || strings.Contains(s, "is a directory") ||
					strings.Contains(s, "not a directory") || strings.Contains(s, "stale") ||
					strings.Contains(s, "not stored") || strings.Contains(s, "unreachable") {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			name := func() string { return fmt.Sprintf("f%d", rng.Intn(10)) }

			for step := 0; step < 100; step++ {
				h := rng.Intn(hosts)
				m := mounts[h]
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					tolerate(m.WriteFile("/"+name(), []byte(fmt.Sprintf("h%d s%d", h, step))))
				case 4:
					tolerate(m.MkdirAll("/sub"))
				case 5:
					tolerate(m.WriteFile("/sub/"+name(), []byte(fmt.Sprintf("deep h%d", h))))
				case 6:
					tolerate(m.Remove("/" + name()))
				case 7:
					_, err := m.ReadFile("/" + name())
					tolerate(err)
				case 8: // a partition on top of the link flakiness
					if rng.Intn(2) == 0 {
						c.Partition([]int{0}, []int{1, 2})
					} else {
						c.Heal()
					}
				case 9:
					if _, err := c.Propagate(); err != nil {
						t.Fatalf("propagate: %v", err)
					}
				}
			}
			c.Heal() // partitions end; link flakiness stays on

			// A single unchanged pass is not proof of quiescence when pulls
			// can fail transiently: demand several unchanged passes in a row.
			settle := func() {
				unchanged := 0
				for round := 0; round < 200 && unchanged < 3; round++ {
					s, err := c.Reconcile()
					if err != nil {
						t.Fatalf("reconcile: %v", err)
					}
					if s.Changed() {
						unchanged = 0
					} else {
						unchanged++
					}
				}
				if unchanged < 3 {
					t.Fatal("not quiescent after 200 rounds under link faults")
				}
			}
			settle()

			// The run must actually have exercised the fault plane.
			ns := c.NetworkStats()
			if ns.RPCFaultsInjected == 0 || ns.RPCRepliesLost == 0 {
				t.Fatalf("fault plane idle: %+v", ns)
			}

			ref := treeOf(t, c, 0, false)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, false); got != ref {
					t.Fatalf("namespace diverged under link faults:\n--- host 0:\n%s\n--- host %d:\n%s", ref, i, got)
				}
			}
			for iter := 0; iter < 5 && len(c.Conflicts()) > 0; iter++ {
				resolved := map[string]bool{}
				for _, conf := range c.Conflicts() {
					if resolved[conf.FileID] {
						continue
					}
					resolved[conf.FileID] = true
					if err := c.Resolve(conf, []byte("chaos-resolved")); err != nil {
						t.Fatalf("resolve: %v", err)
					}
				}
				settle()
			}
			if n := len(c.Conflicts()); n != 0 {
				t.Fatalf("%d conflicts survived resolution", n)
			}
			refFull := treeOf(t, c, 0, true)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, true); got != refFull {
					t.Fatalf("contents diverged after resolution:\n--- host 0:\n%s\n--- host %d:\n%s", refFull, i, got)
				}
			}
			probs, err := c.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 0 {
				t.Fatalf("fsck problems:\n%s", strings.Join(probs, "\n"))
			}
		})
	}
}

func TestClusterGCEndToEnd(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c.Mount(0)
	if err := m.WriteFile("/doomed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}
	// GC while host 2 is partitioned: unsafe, must collect nothing for the
	// shared volume.
	c.Partition([]int{0, 1}, []int{2})
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	n, err := c.CollectGarbage()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("collected %d tombstones with a replica unreachable", n)
	}
	// Heal: delete propagates everywhere, then GC collects on all hosts.
	c.Heal()
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	n, err = c.CollectGarbage()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("collected %d tombstones, want 3 (one per replica)", n)
	}
	// Still converged, still deleted, still clean.
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("/doomed"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("resurrected: %v", err)
	}
	probs, err := c.Fsck()
	if err != nil || len(probs) != 0 {
		t.Fatalf("fsck: %v %v", probs, err)
	}
}

// TestChaosBatchedPropagationUnderFaults exercises the batched conditional
// pull path alone (no reconciliation safety net) under an adversarial RPC
// plane: request loss, and lost replies — the server executed the batch,
// the client retried it, so the whole batch replays.  The workload itself
// runs fault-free: a faulty write can legitimately fail over mid-reply-loss
// and apply at two replicas (a real conflict, covered by the flaky-links
// test above); here every host writes distinct names cleanly, so the
// propagation plane must converge with ZERO conflicts — a batch replay
// that re-installed a version it already had would surface as a spurious
// conflict or a failed pass.  Notification loss also stays off because
// propagation by itself cannot recover a dropped new-version notice; that
// is reconciliation's job (§3.3).
func TestChaosBatchedPropagationUnderFaults(t *testing.T) {
	const hosts = 3
	var faultsSeen, replaysSeen uint64
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(hosts, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			mounts := make([]*Mount, hosts)
			for i := range mounts {
				if mounts[i], err = c.Mount(i); err != nil {
					t.Fatal(err)
				}
			}
			// Fault-free write phase: each host owns its names, so nothing
			// here can conflict.  Notifications pile up in the pending
			// caches; no propagation runs yet.
			for step := 0; step < 60; step++ {
				h := rng.Intn(hosts)
				name := fmt.Sprintf("/h%d-f%d", h, rng.Intn(6))
				if err := mounts[h].WriteFile(name, []byte(fmt.Sprintf("h%d s%d", h, step))); err != nil {
					t.Fatalf("write %s: %v", name, err)
				}
			}

			// Converge by propagation alone under the fault plane — no
			// Reconcile calls from here on.  Propagation is quiescent when
			// every replica's pending new-version cache has drained: each
			// entry ends in an install, a stale drop, or a conflict report;
			// transiently failed entries stay pending under backoff and must
			// eventually drain despite the fault plane.
			pending := func() int {
				n := 0
				for i := 0; i < hosts; i++ {
					for _, l := range c.Host(i).LocalReplicas() {
						n += len(l.PendingVersions())
					}
				}
				return n
			}
			if pending() == 0 {
				t.Fatal("write phase queued no pending versions")
			}
			c.ResetNetworkStats() // count propagation traffic only
			c.InjectFaults(FaultConfig{RPCFailRate: 0.2, ReplyLossRate: 0.25})
			pulled := 0
			drained := false
			for round := 0; round < 300 && !drained; round++ {
				s, err := c.Propagate()
				if err != nil {
					t.Fatalf("propagate: %v", err)
				}
				pulled += s.FilesPulled
				drained = pending() == 0
			}
			if !drained {
				t.Fatalf("%d entries still pending after 300 propagation passes under RPC faults", pending())
			}
			if pulled == 0 {
				t.Fatal("propagation drained without pulling anything")
			}

			// Verification reads run fault-free; the propagation above did not.
			ns := c.NetworkStats()
			c.ClearFaults()
			ref := treeOf(t, c, 0, true)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, true); got != ref {
					t.Fatalf("diverged after propagation-only convergence:\n--- host 0:\n%s\n--- host %d:\n%s", ref, i, got)
				}
			}
			if n := len(c.Conflicts()); n != 0 {
				t.Fatalf("%d conflicts from non-conflicting workload (batch replay bug?)", n)
			}
			// Batching keeps the propagation phase to a handful of RPCs, so
			// a single seed can dodge a fault kind; the cross-seed totals
			// must show both request loss and reply loss (replay) happened.
			faultsSeen += ns.RPCFaultsInjected
			replaysSeen += ns.RPCRepliesLost
			probs, err := c.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 0 {
				t.Fatalf("fsck problems:\n%s", strings.Join(probs, "\n"))
			}
		})
	}
	if faultsSeen == 0 || replaysSeen == 0 {
		t.Fatalf("fault plane idle across all seeds: faults=%d, lost replies=%d", faultsSeen, replaysSeen)
	}
}

// TestPropagationDeterministicUnderFaults pins the concurrency contract of
// the batched propagation pipeline: with the same cluster seed, the same
// injected fault rates, and the same workload, two runs must produce the
// exact same per-host recon.Stats sequence — worker-pool scheduling and
// per-link fault draws may interleave differently in time, but must never
// change any observable outcome.
func TestPropagationDeterministicUnderFaults(t *testing.T) {
	const hosts = 3
	run := func() []recon.Stats {
		c, err := NewCluster(hosts, WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		c.InjectFaults(FaultConfig{RPCFailRate: 0.15, ReplyLossRate: 0.15})
		mounts := make([]*Mount, hosts)
		for i := range mounts {
			if mounts[i], err = c.Mount(i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < hosts; i++ {
			for j := 0; j < 8; j++ {
				name := fmt.Sprintf("/h%d-f%d", i, j)
				// A write may fail under the fault plane; the failure draw
				// itself is seeded, so both runs fail identically.
				_ = mounts[i].WriteFile(name, []byte(name))
			}
		}
		var trace []recon.Stats
		for pass := 0; pass < 12; pass++ {
			for i := 0; i < hosts; i++ {
				s, _ := c.Host(i).PropagateOnce() // transient errors defer; stats still count
				trace = append(trace, s)
			}
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pass %d host %d diverged between identical runs:\n%v\nvs\n%v",
				i/hosts, i%hosts, a[i], b[i])
		}
	}
}
