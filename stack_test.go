package ficus

// The §7 claim in its maximal form: "layers can indeed be transparently
// inserted between other layers, and even surround other layers."  This
// test assembles every layer in the repository into one stack —
//
//	authentication → encryption → monitoring → logical → NFS → physical → UFS
//
// — and runs the full vnode conformance suite through it, then checks the
// cross-layer side effects (ciphertext on disk, opens registered at the
// bottom, operations counted in the middle, EPERM at the top).

import (
	"bytes"
	"testing"

	"repro/internal/authfs"
	"repro/internal/cryptfs"
	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/nfs"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

type megaStack struct {
	top   vnode.VFS
	hook  *vnode.HookVFS
	phys  *physical.Layer
	dev   *disk.Device
	store vnode.VFS
}

func buildMegaStack(t testing.TB, cred string, acl *authfs.ACL) *megaStack {
	t.Helper()
	vol := ids.VolumeHandle{Allocator: 7, Volume: 7}
	dev := disk.New(16384)
	fs, err := ufs.Mkfs(dev, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := ufsvn.New(fs)
	phys, err := physical.Format(store, vol, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(1)
	nfs.Serve(net.Host("srv"), phys, phys)
	client := nfs.Dial(net.Host("cli"), "srv", nil)
	lay := logical.New(vol, []logical.Replica{{ID: 1, FS: client}}, logical.Options{})
	hook := vnode.NewHook(lay, nil)
	crypt := cryptfs.New(hook, []byte("mega-stack secret"))
	auth := authfs.New(crypt, acl, authfs.Credential{User: cred})
	return &megaStack{top: auth, hook: hook, phys: phys, dev: dev, store: store}
}

func TestSixLayerStackConformance(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: logical.MaxName},
		func(t *testing.T) vnode.VFS {
			return buildMegaStack(t, "root", authfs.NewACL(authfs.PermAll)).top
		})
}

func TestSixLayerStackSideEffects(t *testing.T) {
	acl := authfs.NewACL(0,
		authfs.Rule{User: authfs.Anyone, Prefix: "/", Perm: authfs.PermAll},
	)
	m := buildMegaStack(t, "user", acl)
	root, err := m.top.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("secret.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("through six layers and back")
	if err := f.Open(vnode.OpenWrite); err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, plain); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(vnode.OpenWrite); err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(f)
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("round trip: %q %v", got, err)
	}

	// Bottom: the physical layer saw the open (shipped through the lookup
	// encoding across NFS, initiated four layers up).
	if m.phys.TotalOpens() != 1 {
		t.Fatalf("physical layer saw %d opens", m.phys.TotalOpens())
	}
	// Bottom: the UFS data file holds ciphertext, not plaintext.
	physRoot, _ := m.phys.Root()
	pv, err := physRoot.Lookup("secret.txt")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := vnode.ReadFile(pv)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("layers")) {
		t.Fatal("plaintext leaked below the encryption layer")
	}
	// Middle: the monitoring layer counted the traffic.
	if m.hook.Ops() == 0 {
		t.Fatal("monitoring layer saw nothing")
	}
	// Top: the ACL bites (the administrator seals the directory after
	// creating it).
	if _, err := root.Mkdir("sealed"); err != nil {
		t.Fatal(err)
	}
	acl.Append(authfs.Rule{User: authfs.Anyone, Prefix: "/sealed", Perm: authfs.PermRead})
	sealed, err := root.Lookup("sealed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sealed.Create("x", true); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("ACL not enforced through the stack: %v", err)
	}
	// Bottom: real disk blocks moved for all of it.
	if m.dev.Stats().Total() == 0 {
		t.Fatal("no device I/O recorded")
	}
}
