// Package ficus is the public face of this reproduction of the Ficus
// replicated file system (Guy, Heidemann, Mak, Page, Popek, Rothmeier —
// "Implementation of the Ficus Replicated File System", Summer USENIX 1990).
//
// Ficus is an optimistically replicated file system built as a stack of
// vnode layers: a logical layer presenting a one-copy abstraction over a
// set of physical replica layers, with NFS as the transport between layers
// on different hosts and UFS as the storage substrate.  Any accessible
// replica may be read *and updated* (one-copy availability); updates
// propagate via asynchronous notification and a propagation daemon, and a
// periodic reconciliation protocol merges divergent replicas — repairing
// directory conflicts automatically and reporting file conflicts to the
// owner.
//
// The package wraps a deterministic multi-host simulation: hosts with their
// own disks and UFS instances, a partitionable network, and explicit daemon
// steps, so the paper's behaviours are scriptable:
//
//	c, _ := ficus.NewCluster(3)
//	m0, _ := c.Mount(0)
//	_ = m0.WriteFile("/doc", []byte("v1"))
//	c.Partition([]int{0}, []int{1, 2})   // network splits
//	_ = m0.WriteFile("/doc", []byte("v2")) // still updatable: one-copy availability
//	c.Heal()
//	c.Settle(10)                          // reconciliation daemons converge
//	for _, conf := range c.Conflicts() {  // concurrent updates reported
//		_ = c.Resolve(conf, []byte("merged"))
//	}
package ficus

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/sim"
)

// Policy selects how the logical layer picks among accessible replicas.
type Policy = logical.Policy

// Replica-selection policies.
const (
	// MostRecent is the paper's default: select the most recent copy
	// available.
	MostRecent = logical.MostRecent
	// FirstAvailable uses the closest (first configured) accessible copy.
	FirstAvailable = logical.FirstAvailable
)

// MaxName is the longest file name component Ficus accepts: the open/close
// encoding must fit the substrate's 255-byte name field (paper §2.3 fn2).
const MaxName = logical.MaxName

// Option tunes cluster construction.
type Option func(*clusterConfig)

type clusterConfig struct {
	seed    int64
	policy  Policy
	storage *core.StorageOptions
}

// WithSeed fixes the simulation's random seed (default 1).
func WithSeed(seed int64) Option { return func(c *clusterConfig) { c.seed = seed } }

// WithPolicy sets the default replica-selection policy for Mount.
func WithPolicy(p Policy) Option { return func(c *clusterConfig) { c.policy = p } }

// WithStorage sizes each host's disk.
func WithStorage(diskBlocks, inodes int) Option {
	return func(c *clusterConfig) {
		c.storage = &core.StorageOptions{DiskBlocks: diskBlocks, Inodes: inodes}
	}
}

// Cluster is a set of Ficus hosts on one simulated network, sharing a root
// volume replicated on every host.
type Cluster struct {
	sim    *sim.Cluster
	policy Policy

	volumes map[Volume][]core.ReplicaLoc
	nextRep map[Volume]ids.ReplicaID
}

// NewCluster builds a cluster of n hosts with the root volume replicated on
// all of them.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	cfg := clusterConfig{seed: 1, policy: MostRecent}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := sim.New(sim.Config{Hosts: n, Seed: cfg.seed, Storage: cfg.storage})
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		sim:     s,
		policy:  cfg.policy,
		volumes: make(map[Volume][]core.ReplicaLoc),
		nextRep: make(map[Volume]ids.ReplicaID),
	}
	rootVol := Volume{h: s.Vol}
	c.volumes[rootVol] = s.Locs
	c.nextRep[rootVol] = ids.ReplicaID(n + 1)
	return c, nil
}

// NumHosts returns the cluster size.
func (c *Cluster) NumHosts() int { return len(c.sim.Hosts) }

// RootVolume returns the shared root volume.
func (c *Cluster) RootVolume() Volume { return Volume{h: c.sim.Vol} }

// Partition splits the network into groups of host indices; unlisted hosts
// end up isolated.
func (c *Cluster) Partition(groups ...[]int) { c.sim.Partition(groups...) }

// PartitionSplit cuts the cluster in two at index k: hosts [0, k) in one
// group, hosts [k, n) in the other.  The hand-enumerated Partition call gets
// unwieldy at hundreds of hosts; ranges and predicates are the large-cluster
// ergonomics.
func (c *Cluster) PartitionSplit(k int) {
	c.PartitionFunc(func(i int) bool { return i < k })
}

// PartitionFunc splits the cluster in two by predicate: hosts where pred is
// true form one group, the rest the other.
func (c *Cluster) PartitionFunc(pred func(host int) bool) {
	var a, b []int
	for i := 0; i < c.NumHosts(); i++ {
		if pred(i) {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	c.Partition(a, b)
}

// Heal reconnects every host.
func (c *Cluster) Heal() { c.sim.Heal() }

// HealAll reconnects every host — the companion to PartitionSplit and
// PartitionFunc.  Identical to Heal; the name exists so churn scripts that
// partition repeatedly read as cut/heal pairs.  Injected faults (loss,
// latency) are separate: clear those with ClearFaults.
func (c *Cluster) HealAll() { c.Heal() }

// SetHostDown crashes or revives host i's *network* presence only: services
// and in-memory state survive.  For the full power-failure model — state
// lost, disks kept, remount on reboot — use CrashHost/RestartHost.
func (c *Cluster) SetHostDown(i int, down bool) {
	c.sim.Hosts[i].SimHost().SetDown(down)
}

// CrashHost power-fails host i: every service stops answering and all
// in-memory state (mounts, caches, peer health) is lost, while its disks
// survive for RestartHost.  Idempotent.
func (c *Cluster) CrashHost(i int) { c.sim.Hosts[i].Crash() }

// RestartHost reboots a crashed host: each volume replica is remounted from
// its surviving disk (UFS crash recovery, then physical-layer recovery
// including the durable new-version cache journal), services are
// re-exported, and every remounted volume is flagged for one anti-entropy
// rescan on the next daemon pass.  Mounts taken before the crash are dead;
// call Mount again.
func (c *Cluster) RestartHost(i int) error { return c.sim.Hosts[i].Restart() }

// HostDown reports whether host i is currently crashed.
func (c *Cluster) HostDown(i int) bool { return c.sim.Hosts[i].Down() }

// SyncStats summarizes propagation/reconciliation work.
type SyncStats struct {
	DirsVisited    int
	DirsCreated    int
	EntriesAdopted int
	EntriesDeleted int
	FilesPulled    int
	Conflicts      int
	NameRepairs    int
}

// Changed reports whether the pass modified any replica.
func (s SyncStats) Changed() bool {
	return s.DirsCreated > 0 || s.EntriesAdopted > 0 || s.EntriesDeleted > 0 || s.FilesPulled > 0
}

func fromRecon(s recon.Stats) SyncStats {
	return SyncStats{
		DirsVisited:    s.DirsVisited,
		DirsCreated:    s.DirsCreated,
		EntriesAdopted: s.EntriesAdopted,
		EntriesDeleted: s.EntriesDeleted,
		FilesPulled:    s.FilesPulled,
		Conflicts:      s.Conflicts,
		NameRepairs:    s.NameRepairs,
	}
}

// Propagate runs one update-propagation daemon pass on every host (paper
// §3.2).
func (c *Cluster) Propagate() (SyncStats, error) {
	s, err := c.sim.PropagateAll()
	return fromRecon(s), err
}

// Reconcile runs one reconciliation pass on every host (paper §3.3).
func (c *Cluster) Reconcile() (SyncStats, error) {
	s, err := c.sim.ReconcileAll()
	return fromRecon(s), err
}

// Settle reconciles until quiescent, up to maxRounds passes.
func (c *Cluster) Settle(maxRounds int) error {
	_, err := c.sim.Settle(maxRounds)
	return err
}

// CollectGarbage runs tombstone garbage collection on every host.  A
// volume's tombstones are collected only while all of its replicas are
// reachable — the safety condition for completing an optimistic delete.
// Returns the number of tombstones collected.
func (c *Cluster) CollectGarbage() (int, error) {
	total := 0
	for _, h := range c.sim.Hosts {
		n, err := h.CollectGarbage()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Evict discards host i's local copy of the file at path in the root
// volume while keeping the name: selective storage (paper §4.1).  Reads
// from that host transparently fail over to another replica; a later
// reconciliation or propagation pass may re-materialize the local copy.
func (c *Cluster) Evict(host int, path string) error {
	return c.sim.Hosts[host].EvictFile(c.sim.Vol, path)
}

// Fsck runs the UFS and Ficus consistency checkers over every replica on
// every host; an empty result means the whole cluster is structurally
// clean.
func (c *Cluster) Fsck() ([]string, error) {
	var out []string
	for i, h := range c.sim.Hosts {
		probs, err := h.Fsck()
		if err != nil {
			return out, err
		}
		for _, p := range probs {
			out = append(out, fmt.Sprintf("host %d: %s", i, p))
		}
	}
	return out, nil
}

// Tick advances every host's graft-pruning idle clock.
func (c *Cluster) Tick() {
	for _, h := range c.sim.Hosts {
		h.Tick()
	}
}

// PruneGrafts prunes idle grafts on every host, returning the total pruned.
func (c *Cluster) PruneGrafts(maxIdle uint64) int {
	n := 0
	for _, h := range c.sim.Hosts {
		n += h.PruneGrafts(maxIdle)
	}
	return n
}

// Conflict is one detected concurrent-update conflict on a regular file,
// reported to the owner.
type Conflict struct {
	Host     int    // host whose replica logged it
	FileID   string // the logical file's id
	LocalVV  string // the two divergent update histories
	RemoteVV string
	Note     string

	inner physical.Conflict
	layer *physical.Layer
}

// Conflicts gathers every host's conflict log for the root volume.
func (c *Cluster) Conflicts() []Conflict {
	var out []Conflict
	for i, h := range c.sim.Hosts {
		l := h.LocalReplica(c.sim.Vol)
		if l == nil {
			continue
		}
		for _, pc := range l.Conflicts() {
			out = append(out, Conflict{
				Host:     i,
				FileID:   pc.File.String(),
				LocalVV:  pc.LocalVV.String(),
				RemoteVV: pc.RemoteVV.String(),
				Note:     pc.Note,
				inner:    pc,
				layer:    l,
			})
		}
	}
	return out
}

// Resolve installs newData as the resolution of a conflict, under a version
// vector dominating both histories so the resolution propagates like any
// other update; the conflict log entry is cleared.  Several hosts may
// report the same logical conflict: resolve each file ONCE and let the
// resolution propagate (Settle) — issuing independent resolutions from two
// hosts is itself a pair of concurrent updates and will re-conflict.
func (c *Cluster) Resolve(conf Conflict, newData []byte) error {
	if conf.layer == nil {
		return errors.New("ficus: conflict not obtained from Conflicts()")
	}
	if err := recon.Resolve(conf.layer, conf.inner, newData); err != nil {
		return err
	}
	conf.layer.ClearConflictsFor(conf.inner.File)
	return nil
}

// Host returns low-level access to host i (for experiments).
func (c *Cluster) Host(i int) *core.Host { return c.sim.Hosts[i] }

// FaultConfig programs steady-state fault injection on the simulated
// network.  All rates are probabilities in [0, 1] and draw from the
// cluster's seeded RNG, so faulty runs stay deterministic.
type FaultConfig struct {
	// RPCFailRate is the chance an RPC request is lost before the remote
	// handler runs (the caller sees an unreachable error).
	RPCFailRate float64
	// ReplyLossRate is the chance an RPC reply is lost after the handler
	// ran: the remote side did the work, the caller sees failure — the
	// at-most-once ambiguity retries must tolerate.
	ReplyLossRate float64
	// DatagramLossRate drops best-effort update notifications.
	DatagramLossRate float64
	// DatagramDupRate delivers a notification twice (at-least-once links).
	DatagramDupRate float64
	// ReorderRate shuffles the delivery order of a multicast's fan-out.
	ReorderRate float64
}

// InjectFaults applies the fault plane configuration to every link.  The
// replication stack is expected to converge regardless: RPC callers retry
// idempotent pulls, propagation backs off and re-queues failed entries,
// and reconciliation remains the lossless safety net.
func (c *Cluster) InjectFaults(f FaultConfig) {
	n := c.sim.Net
	n.SetRPCFaultRate(f.RPCFailRate)
	n.SetReplyLossRate(f.ReplyLossRate)
	n.SetDatagramLossRate(f.DatagramLossRate)
	n.SetDatagramDuplicateRate(f.DatagramDupRate)
	n.SetDatagramReorderRate(f.ReorderRate)
}

// ClearFaults removes every injected fault, global and per-link — including
// latency profiles and hang rates.
func (c *Cluster) ClearFaults() { c.sim.Net.ClearFaults() }

// LatencyConfig programs the network's virtual-latency plane.  Every RPC
// leg (request and reply) draws base + jitter ticks from the cluster's
// seeded per-link RNG; a spike adds SpikeTicks more with probability
// SpikeRate per leg — the heavy tail.  HangRate is the chance an RPC is
// accepted, executed remotely, and never answered: without an RPC deadline
// the caller waits effectively forever in virtual time.  All of it is
// deterministic under the seed; none of it blocks real time.
type LatencyConfig struct {
	BaseTicks   uint64  // per-leg base latency in virtual ticks
	JitterTicks uint64  // uniform extra in [0, JitterTicks]
	SpikeRate   float64 // probability of a latency spike per leg
	SpikeTicks  uint64  // extra ticks when a spike fires
	HangRate    float64 // probability an RPC hangs after the handler ran
}

// InjectLatency applies the latency profile to every link.
func (c *Cluster) InjectLatency(l LatencyConfig) {
	n := c.sim.Net
	n.SetLatency(l.BaseTicks, l.JitterTicks)
	n.SetLatencySpikes(l.SpikeRate, l.SpikeTicks)
	n.SetHangRate(l.HangRate)
}

// InjectLinkLatency applies a latency profile to the directed link from
// host `from` to host `to`, overriding the global profile there.
func (c *Cluster) InjectLinkLatency(from, to int, l LatencyConfig) {
	n := c.sim.Net
	a, b := sim.HostName(from), sim.HostName(to)
	n.SetLinkLatency(a, b, l.BaseTicks, l.JitterTicks)
	n.SetLinkLatencySpikes(a, b, l.SpikeRate, l.SpikeTicks)
	n.SetLinkHangRate(a, b, l.HangRate)
}

// HangHost makes host i a hung peer: every RPC sent TO it is accepted and
// executed, but the reply never arrives — the failure mode a crashed host
// cannot produce and deadlines exist for.  Datagrams and the host's own
// outbound traffic still flow.  Undo with UnhangHost.
func (c *Cluster) HangHost(i int) {
	for j := range c.sim.Hosts {
		if j != i {
			c.sim.Net.SetLinkHangRate(sim.HostName(j), sim.HostName(i), 1)
		}
	}
}

// UnhangHost removes the hang injected by HangHost.
func (c *Cluster) UnhangHost(i int) {
	for j := range c.sim.Hosts {
		if j != i {
			c.sim.Net.SetLinkHangRate(sim.HostName(j), sim.HostName(i), 0)
		}
	}
}

// GossipConfig tunes the epidemic update-notification plane and the
// anti-entropy scheduler's per-pass peer budget.  The zero value keeps the
// paper's flat multicast and the full per-pass peer sweep.
type GossipConfig = core.GossipConfig

// ConfigureGossip installs the gossip/scheduler settings on every host.
func (c *Cluster) ConfigureGossip(cfg GossipConfig) {
	for _, h := range c.sim.Hosts {
		h.ConfigureGossip(cfg)
	}
}

// GossipStats counts one host's gossip-plane activity.
type GossipStats struct {
	RumorsOriginated uint64 // updates this host's notifier announced
	NoticesSent      uint64 // datagrams sent originating those rumors
	RumorsRelayed    uint64 // datagrams sent relaying others' rumors
	RumorsAccepted   uint64 // first-seen rumors fed into local caches
	RumorsSuppressed uint64 // duplicates dropped by the seen-cache
	RumorsForeign    uint64 // rumors for volumes this host doesn't store
	RumorsExpired    uint64 // rumors that arrived with no hops left
}

func fromGossip(s core.GossipStats) GossipStats {
	return GossipStats{
		RumorsOriginated: s.RumorsOriginated,
		NoticesSent:      s.NoticesSent,
		RumorsRelayed:    s.RumorsRelayed,
		RumorsAccepted:   s.RumorsAccepted,
		RumorsSuppressed: s.RumorsSuppressed,
		RumorsForeign:    s.RumorsForeign,
		RumorsExpired:    s.RumorsExpired,
	}
}

// GossipStatsFor returns host i's accumulated gossip counters.
func (c *Cluster) GossipStatsFor(host int) GossipStats {
	return fromGossip(c.sim.Hosts[host].GossipStats())
}

// PeerPriority is one entry of a host's anti-entropy plan: the order the
// scheduler would visit the root volume's peers in right now, stalest and
// least-healthy first.
type PeerPriority struct {
	Peer        int    // peer host index (-1 if the address maps to no host)
	Replica     ids.ReplicaID
	State       string // tracked health behind the priority
	LastSync    uint64 // daemon tick of the last clean pass (0 = never)
	LastAttempt uint64 // daemon tick of the last attempt (0 = never)
	Score       uint64 // effective staleness driving the order
}

// StalePeersFor reports host i's current anti-entropy priority order over
// the root volume — what its next reconcile pass would visit first.
func (c *Cluster) StalePeersFor(host int) []PeerPriority {
	byAddr := make(map[string]int, len(c.sim.Hosts))
	for j := range c.sim.Hosts {
		byAddr[string(sim.HostName(j))] = j
	}
	plan := c.sim.Hosts[host].AntiEntropyPlan(c.sim.Vol)
	out := make([]PeerPriority, 0, len(plan))
	for _, p := range plan {
		peer, ok := byAddr[string(p.Addr)]
		if !ok {
			peer = -1
		}
		out = append(out, PeerPriority{
			Peer:        peer,
			Replica:     p.Replica,
			State:       p.Health,
			LastSync:    p.LastSync,
			LastAttempt: p.LastAttempt,
			Score:       p.Score,
		})
	}
	return out
}

// SetLinkDatagramLoss makes update-notification datagrams on the directed
// link from -> to drop independently with probability rate, drawn from that
// link's own seeded RNG — rumor loss for the gossip chaos runs, without
// perturbing any other link's fault sequence.
func (c *Cluster) SetLinkDatagramLoss(from, to int, rate float64) {
	c.sim.Net.SetLinkDatagramLossRate(sim.HostName(from), sim.HostName(to), rate)
}

// SlowPeerConfig tunes the hosts' slow-peer tolerance: RPC deadlines, the
// Slow health threshold, hedged pulls, and propagation backpressure.
type SlowPeerConfig = core.SlowPeerConfig

// ConfigureSlowPeers installs the slow-peer tolerance settings on every
// host; they govern all subsequent daemon passes.
func (c *Cluster) ConfigureSlowPeers(cfg SlowPeerConfig) {
	for _, h := range c.sim.Hosts {
		h.ConfigureSlowPeers(cfg)
	}
}

// SlowStats summarizes one host's slow-peer tolerance work across all of
// its propagation passes so far.
type SlowStats struct {
	Hedges         int    // backup pulls issued after the hedging threshold
	HedgeWins      int    // hedged pulls whose backup answered first
	SlowSheds      int    // pulls redirected away from a Slow primary
	BudgetDeferred int    // due entries pushed to a later pass by the tick budget
	PassTicks      uint64 // summed virtual makespan of the host's passes
	DeadlineMisses uint64 // peer exchanges abandoned at their RPC deadline
}

// SlowStatsFor returns host i's accumulated slow-peer counters.
func (c *Cluster) SlowStatsFor(host int) SlowStats {
	h := c.sim.Hosts[host]
	ps := h.PropagationStats()
	out := SlowStats{
		Hedges:         ps.Hedges,
		HedgeWins:      ps.HedgeWins,
		SlowSheds:      ps.SlowSheds,
		BudgetDeferred: ps.BudgetDeferred,
		PassTicks:      ps.PassTicks,
	}
	for j := range c.sim.Hosts {
		if j != host {
			out.DeadlineMisses += h.PeerHealthInfo(sim.HostName(j)).DeadlineMisses
		}
	}
	return out
}

// DiskFaultConfig programs steady-state disk fault injection on one host:
// seeded probabilities of a transient I/O error per read and per write,
// plus SILENT corruption — a read whose buffer is garbled after the fact,
// or a write whose stored bytes are garbled, both reported as success.
// Failed operations return a typed transient error, so the replication
// stack's retry machinery treats a flaky platter like a flaky link;
// corrupted operations are what the checksum scrubber exists to catch.
type DiskFaultConfig struct {
	Seed             int64
	ReadErrRate      float64
	WriteErrRate     float64
	CorruptReadRate  float64 // silent garbling of a successful read
	CorruptWriteRate float64 // silent garbling of the stored block on write
}

// InjectDiskFaults applies the profile to every disk behind host i's
// replicas (crashed or mounted).  A zero config clears injection.
func (c *Cluster) InjectDiskFaults(host int, f DiskFaultConfig) {
	p := disk.FaultProfile{
		Seed: f.Seed, ReadErrRate: f.ReadErrRate, WriteErrRate: f.WriteErrRate,
		CorruptReadRate: f.CorruptReadRate, CorruptWriteRate: f.CorruptWriteRate,
	}
	for _, d := range c.sim.Hosts[host].Devices() {
		d.InjectFaults(p)
	}
}

// DiskStats sums I/O and fault counters across every disk of host i.
type DiskStats struct {
	Reads         uint64
	Writes        uint64
	ReadFaults    uint64 // reads failed with an injected transient error
	WriteFaults   uint64 // writes failed with an injected transient error
	TornWrites    uint64 // crashing writes that persisted a partial block
	CorruptReads  uint64 // reads silently garbled by injection
	CorruptWrites uint64 // writes whose stored block was silently garbled
}

// DiskStatsFor returns host i's aggregate disk counters.
func (c *Cluster) DiskStatsFor(host int) DiskStats {
	var out DiskStats
	for _, d := range c.sim.Hosts[host].Devices() {
		s := d.Stats()
		out.Reads += s.Reads
		out.Writes += s.Writes
		out.ReadFaults += s.ReadFaults
		out.WriteFaults += s.WriteFaults
		out.TornWrites += s.TornWrites
		out.CorruptReads += s.CorruptReads
		out.CorruptWrites += s.CorruptWrites
	}
	return out
}

// ScrubStats summarizes integrity-daemon work: the checksum sweep and the
// quarantine-repair pass.
type ScrubStats struct {
	VerifiedFiles  int // file versions checked against a sealed sidecar
	VerifiedBlocks int // block checksums compared
	Resealed       int // unverifiable sidecars recomputed from local data
	Corrupt        int // verification failures that entered quarantine
	Cleared        int // quarantined files superseded in place
	RepairAttempts int // due quarantined versions repair was attempted for
	Repaired       int // versions healed from a peer this pass
	RepairDeferred int // versions re-queued under backoff
	GaveUp         int // rounds where every known peer definitively refused
}

func fromScrub(r core.ScrubResult) ScrubStats {
	return ScrubStats{
		VerifiedFiles:  r.Scrub.VerifiedFiles,
		VerifiedBlocks: r.Scrub.VerifiedBlocks,
		Resealed:       r.Scrub.Resealed,
		Corrupt:        r.Scrub.Corrupt,
		Cleared:        r.Scrub.Cleared,
		RepairAttempts: r.Repair.Attempted,
		Repaired:       r.Repair.Repaired,
		RepairDeferred: r.Repair.Deferred,
		GaveUp:         r.Repair.GaveUp,
	}
}

// Scrub runs one integrity pass (checksum sweep + quarantine repair) on
// every host.
func (c *Cluster) Scrub() (ScrubStats, error) {
	s, err := c.sim.ScrubAll()
	return fromScrub(s), err
}

// ScrubHost runs one integrity pass on host i alone.
func (c *Cluster) ScrubHost(host int) (ScrubStats, error) {
	s, err := c.sim.Hosts[host].ScrubOnce()
	return fromScrub(s), err
}

// IntegrityStats reports the cumulative integrity counters of one host
// (Quarantined is a gauge: files currently quarantined).
type IntegrityStats struct {
	ScrubbedFiles       uint64
	ScrubbedBlocks      uint64
	Resealed            uint64
	CorruptionsDetected uint64
	Repaired            uint64
	Unrepairable        uint64
	Quarantined         uint64

	// Delta-propagation work (mirrored from the block layer): blocks this
	// host shipped to peers that lacked them, blocks its own delta installs
	// reassembled locally, and the payload bytes those reuses kept off the
	// wire.
	BlocksShipped   uint64
	BlocksReused    uint64
	DeltaBytesSaved uint64
}

// IntegrityStatsFor returns host i's aggregate integrity counters.
func (c *Cluster) IntegrityStatsFor(host int) IntegrityStats {
	s := c.sim.Hosts[host].IntegrityStats()
	return IntegrityStats{
		ScrubbedFiles:       s.ScrubbedFiles,
		ScrubbedBlocks:      s.ScrubbedBlocks,
		Resealed:            s.Resealed,
		CorruptionsDetected: s.CorruptionsDetected,
		Repaired:            s.Repaired,
		Unrepairable:        s.Unrepairable,
		Quarantined:         s.Quarantined,
		BlocksShipped:       s.BlocksShipped,
		BlocksReused:        s.BlocksReused,
		DeltaBytesSaved:     s.DeltaBytesSaved,
	}
}

// BlockStats reports one host's content-addressed block layer: the shared
// block pool backing delta propagation (PoolBlocks/PoolBytes are gauges;
// the rest are cumulative).
type BlockStats struct {
	PoolBlocks       uint64 // blocks currently pooled across the host's replicas
	PoolBytes        uint64 // bytes currently pooled
	ManifestsSealed  uint64 // block manifests committed
	OrphansReclaimed uint64 // unreferenced pool blocks removed at mount
	BadBlocks        uint64 // pool blocks that failed their address on read
	BlocksShipped    uint64 // blocks shipped to peers that lacked them
	BlocksReused     uint64 // blocks delta installs reassembled from the local pool
	BytesShipped     uint64 // payload bytes of shipped blocks
	BytesSaved       uint64 // payload bytes delta installs kept off the wire
}

// BlockStatsFor returns host i's aggregate block-layer counters.
func (c *Cluster) BlockStatsFor(host int) BlockStats {
	s := c.sim.Hosts[host].BlockStats()
	return BlockStats{
		PoolBlocks:       s.PoolBlocks,
		PoolBytes:        s.PoolBytes,
		ManifestsSealed:  s.ManifestsSealed,
		OrphansReclaimed: s.OrphansReclaimed,
		BadBlocks:        s.BadBlocks,
		BlocksShipped:    s.BlocksShipped,
		BlocksReused:     s.BlocksReused,
		BytesShipped:     s.BytesShipped,
		BytesSaved:       s.BytesSaved,
	}
}

// InjectBitRot silently flips one bit of the stored data byte at off in
// host i's local copy of the file at path in the root volume, leaving the
// version vector and sealed sidecar untouched — at-rest damage for the
// scrubber to detect and heal.
func (c *Cluster) InjectBitRot(host int, path string, off uint64) error {
	return c.sim.Hosts[host].CorruptFile(c.sim.Vol, path, off)
}

// PendingVersion is one durable new-version cache entry: a version this
// replica has been told about but not yet pulled, with the propagation
// daemon's retry bookkeeping.
type PendingVersion struct {
	Volume    string
	Replica   ids.ReplicaID // local replica holding the entry
	File      string
	Origin    ids.ReplicaID
	Seen      int // coalesced re-announcements
	Attempts  int // failed pull attempts so far
	NotBefore uint64
}

// PendingVersionsFor dumps every replica's new-version cache on host i, in
// deterministic order.  Empty while the host is crashed (the entries live
// on in the on-disk journal and reappear after RestartHost).
func (c *Cluster) PendingVersionsFor(host int) []PendingVersion {
	var out []PendingVersion
	for _, l := range c.sim.Hosts[host].LocalReplicas() {
		for _, nv := range l.PendingVersions() {
			out = append(out, PendingVersion{
				Volume:    l.Volume().String(),
				Replica:   l.Replica(),
				File:      nv.File.String(),
				Origin:    nv.Origin,
				Seen:      nv.Seen,
				Attempts:  nv.Attempts,
				NotBefore: nv.NotBefore,
			})
		}
	}
	return out
}

// PeerHealth is host i's view of one peer: healthy, slow, suspect, or
// dead, plus the latency profile behind the verdict.
type PeerHealth struct {
	Peer           int // peer host index
	State          string
	Fails          int    // consecutive failed exchanges
	EWMATicks      uint64 // latency EWMA in virtual ticks (valid iff HasLatency)
	HasLatency     bool
	DeadlineMisses uint64 // exchanges abandoned at their RPC deadline
}

// PeerHealthFor reports host i's health verdict for every other host.
func (c *Cluster) PeerHealthFor(host int) []PeerHealth {
	var out []PeerHealth
	for j := range c.sim.Hosts {
		if j == host {
			continue
		}
		info := c.sim.Hosts[host].PeerHealthInfo(sim.HostName(j))
		out = append(out, PeerHealth{
			Peer:           j,
			State:          info.State.String(),
			Fails:          info.Fails,
			EWMATicks:      info.EWMATicks,
			HasLatency:     info.HasLatency,
			DeadlineMisses: info.DeadlineMisses,
		})
	}
	return out
}

// NetStats summarizes network traffic.
type NetStats struct {
	RPCs               uint64
	RPCFailures        uint64
	RPCBytes           uint64
	Datagrams          uint64
	DatagramsDropped   uint64
	DatagramsDelivered uint64

	// Fault-plane counters: injected failures are also included in the
	// totals above (an injected request loss counts as an RPCFailure).
	RPCFaultsInjected   uint64
	RPCRepliesLost      uint64
	DatagramsDuplicated uint64
	MulticastsReordered uint64

	// NotifyCodecErrors counts update-notification datagrams dropped by
	// receiving hosts because they failed to decode (truncated or corrupt
	// payloads), summed across the cluster.
	NotifyCodecErrors uint64

	// Gossip-plane counters, summed across the cluster: rumor datagrams
	// sent by origins and relayers, first-seen acceptances, and duplicates
	// killed by suppression.  DatagramBytes is the wire cost of everything
	// delivered on the datagram plane.
	GossipNoticesSent uint64
	GossipRelayed     uint64
	GossipAccepted    uint64
	GossipSuppressed  uint64
	DatagramBytes     uint64

	// Latency-plane counters.
	RPCHangs          uint64 // RPCs whose reply was injected away forever
	RPCDeadlineMisses uint64 // RPCs abandoned at the caller's deadline
	RPCLatencySpikes  uint64 // latency spikes drawn on RPC legs
	RPCVirtualTicks   uint64 // total virtual ticks RPCs spent on the wire
}

// NetworkStats returns the simulated network's counters.
func (c *Cluster) NetworkStats() NetStats {
	s := c.sim.Net.Stats()
	var codecErrs uint64
	var gs core.GossipStats
	for _, h := range c.sim.Hosts {
		codecErrs += h.NotifyCodecErrors()
		hg := h.GossipStats()
		gs.NoticesSent += hg.NoticesSent
		gs.RumorsRelayed += hg.RumorsRelayed
		gs.RumorsAccepted += hg.RumorsAccepted
		gs.RumorsSuppressed += hg.RumorsSuppressed
	}
	return NetStats{
		NotifyCodecErrors:   codecErrs,
		GossipNoticesSent:   gs.NoticesSent,
		GossipRelayed:       gs.RumorsRelayed,
		GossipAccepted:      gs.RumorsAccepted,
		GossipSuppressed:    gs.RumorsSuppressed,
		DatagramBytes:       s.DatagramBytes,
		RPCs:                s.RPCs,
		RPCFailures:         s.RPCFailures,
		RPCBytes:            s.RPCBytes,
		Datagrams:           s.Datagrams,
		DatagramsDropped:    s.DatagramsDropped,
		DatagramsDelivered:  s.DatagramsDelivered,
		RPCFaultsInjected:   s.RPCFaultsInjected,
		RPCRepliesLost:      s.RPCRepliesLost,
		DatagramsDuplicated: s.DatagramsDuplicated,
		MulticastsReordered: s.MulticastsReordered,
		RPCHangs:            s.RPCHangs,
		RPCDeadlineMisses:   s.RPCDeadlineMisses,
		RPCLatencySpikes:    s.RPCLatencySpikes,
		RPCVirtualTicks:     s.RPCVirtualTicks,
	}
}

// ResetNetworkStats zeroes the counters.
func (c *Cluster) ResetNetworkStats() { c.sim.Net.ResetStats() }

// Volume names a Ficus volume.
type Volume struct {
	h ids.VolumeHandle
}

// String renders the volume handle.
func (v Volume) String() string { return v.h.String() }

// NewVolume creates a fresh volume with its first replica on host i.
func (c *Cluster) NewVolume(host int) (Volume, error) {
	vol, rid, err := c.sim.Hosts[host].CreateVolume(nil)
	if err != nil {
		return Volume{}, err
	}
	v := Volume{h: vol}
	c.volumes[v] = []core.ReplicaLoc{{ID: rid, Addr: sim.HostName(host)}}
	c.nextRep[v] = rid + 1
	return v, nil
}

// ReplicateVolume adds a replica of vol on host i, seeded from an existing
// replica (which must be reachable — §3.1 allows changing the replica set
// "whenever a file replica is available").
func (c *Cluster) ReplicateVolume(vol Volume, host int) error {
	locs := c.volumes[vol]
	if len(locs) == 0 {
		return fmt.Errorf("ficus: unknown volume %v", vol)
	}
	rid := c.nextRep[vol]
	if err := c.sim.Hosts[host].AddReplica(vol.h, rid, locs[0], nil); err != nil {
		return err
	}
	c.nextRep[vol] = rid + 1
	c.volumes[vol] = append(locs, core.ReplicaLoc{ID: rid, Addr: sim.HostName(host)})
	for i := range c.sim.Hosts {
		c.sim.Hosts[i].SetLocations(vol.h, c.volumes[vol])
	}
	return nil
}

// DropReplica removes host i's replica of vol and updates every host's
// location table.  At least one replica must remain ("a client may change
// the location and quantity of file replicas whenever a file replica is
// available", §3.1).
func (c *Cluster) DropReplica(vol Volume, host int) error {
	locs := c.volumes[vol]
	if len(locs) == 0 {
		return fmt.Errorf("ficus: unknown volume %v", vol)
	}
	if len(locs) == 1 {
		return fmt.Errorf("ficus: refusing to drop the last replica of %v", vol)
	}
	addr := sim.HostName(host)
	idx := -1
	for i, l := range locs {
		if l.Addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("ficus: host %d stores no replica of %v", host, vol)
	}
	rid := locs[idx].ID
	vr := volumeReplicaHandle(vol, rid)
	if err := c.sim.Hosts[host].RemoveReplica(vr); err != nil {
		return err
	}
	c.volumes[vol] = append(locs[:idx:idx], locs[idx+1:]...)
	for i := range c.sim.Hosts {
		c.sim.Hosts[i].ForgetLocation(vol.h, rid)
		c.sim.Hosts[i].SetLocations(vol.h, c.volumes[vol])
	}
	return nil
}

func volumeReplicaHandle(vol Volume, rid ids.ReplicaID) ids.VolumeReplicaHandle {
	return ids.VolumeReplicaHandle{Vol: vol.h, Replica: rid}
}

// Graft creates a graft point named name in directory dirPath of the root
// volume (on host i's replica), targeting vol.  Other hosts learn of it
// through normal directory reconciliation, and autograft the volume the
// first time a pathname walks through it (§4.4).
func (c *Cluster) Graft(host int, dirPath, name string, vol Volume) error {
	locs := c.volumes[vol]
	if len(locs) == 0 {
		return fmt.Errorf("ficus: unknown volume %v", vol)
	}
	return c.sim.Hosts[host].CreateGraftPoint(c.sim.Vol, dirPath, name, vol.h, locs)
}

// Mount returns a path-based view of the root volume from host i, using the
// cluster's default policy.
func (c *Cluster) Mount(host int) (*Mount, error) {
	return c.MountVolume(host, c.RootVolume())
}

// MountPolicy is Mount with an explicit replica-selection policy.
func (c *Cluster) MountPolicy(host int, p Policy) (*Mount, error) {
	return c.mountVol(host, c.RootVolume(), p)
}

// MountVolume mounts an arbitrary volume from host i.
func (c *Cluster) MountVolume(host int, vol Volume) (*Mount, error) {
	return c.mountVol(host, vol, c.policy)
}

func (c *Cluster) mountVol(host int, vol Volume, p Policy) (*Mount, error) {
	if locs, ok := c.volumes[vol]; ok {
		c.sim.Hosts[host].SetLocations(vol.h, locs)
	}
	lay, err := c.sim.Hosts[host].Mount(vol.h, p)
	if err != nil {
		return nil, err
	}
	root, err := lay.Root()
	if err != nil {
		return nil, err
	}
	return &Mount{root: root}, nil
}
