package ficus

import (
	"errors"
	"testing"
)

// TestSelectiveStorage exercises §4.1: a volume replica keeps a file's name
// without storing its data; access fails over, reconciliation can
// re-materialize.
func TestSelectiveStorage(t *testing.T) {
	c := newTestCluster(t, 2, WithPolicy(FirstAvailable))
	m0, _ := c.Mount(0)
	if err := m0.WriteFile("/big-dataset", []byte("lots of bytes")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}

	// Host 0 evicts its local copy to reclaim space.
	if err := c.Evict(0, "/big-dataset"); err != nil {
		t.Fatal(err)
	}
	// The name is still there, and reads transparently use host 1's copy.
	ents, err := m0.ReadDir("/")
	if err != nil || len(ents) != 1 {
		t.Fatalf("%v %v", ents, err)
	}
	data, err := m0.ReadFile("/big-dataset")
	if err != nil || string(data) != "lots of bytes" {
		t.Fatalf("read through failover: %q %v", data, err)
	}
	// A write from host 0 lands on the replica that stores the file, and
	// the system stays consistent.
	if err := m0.WriteFile("/big-dataset", []byte("updated remotely")); err != nil {
		t.Fatal(err)
	}
	m1, _ := c.Mount(1)
	data, err = m1.ReadFile("/big-dataset")
	if err != nil || string(data) != "updated remotely" {
		t.Fatalf("%q %v", data, err)
	}
	// Reconciliation re-materializes host 0's local copy.
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	if probs, err := c.Fsck(); err != nil || len(probs) != 0 {
		t.Fatalf("fsck: %v %v", probs, err)
	}
	// If host 1 is now partitioned away, host 0 serves from its restored
	// local copy.
	c.Partition([]int{0}, []int{1})
	data, err = m0.ReadFile("/big-dataset")
	if err != nil || string(data) != "updated remotely" {
		t.Fatalf("local copy not restored: %q %v", data, err)
	}
	c.Heal()
}

func TestEvictErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	m0, _ := c.Mount(0)
	if err := c.Evict(0, "/missing"); err == nil {
		t.Fatal("evicted a missing file")
	}
	if err := m0.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(0, "/d"); !errors.Is(err, ErrConflict) && err == nil {
		// Directories cannot be evicted (EISDIR).
	}
	if err := c.Evict(0, "/d"); err == nil {
		t.Fatal("evicted a directory")
	}
	// Double eviction reports not-stored.
	if err := m0.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(0, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(0, "/f"); err == nil {
		t.Fatal("double eviction succeeded")
	}
}
