GO ?= go

.PHONY: all build test check race vet lint invariants chaos chaos-crash chaos-scrub chaos-slow chaos-gossip bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint builds and runs ficusvet, the repo-specific analyzer suite
# (determinism, vvalias, errclass — see DESIGN.md §8).
lint:
	$(GO) build -o /dev/null ./cmd/ficusvet
	$(GO) run ./cmd/ficusvet ./...

race:
	$(GO) test -race ./...

# invariants re-runs the suite with the runtime invariant checks armed
# (internal/invariant; free when the env var is unset).
invariants:
	FICUS_INVARIANTS=1 $(GO) test -count=1 ./...

# chaos runs the whole-system property tests, including the flaky-link
# variant that keeps the fault plane enabled through final convergence.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# chaos-crash runs the crash–restart convergence test with the runtime
# invariant checks armed: random hosts power-fail and reboot
# mid-propagation under RPC faults, and every replica must converge from
# its durable on-disk state (DESIGN.md §10).
chaos-crash:
	FICUS_INVARIANTS=1 $(GO) test -race -count=1 -run 'TestChaosCrashRestartConvergence' -v .

# chaos-scrub runs the silent-corruption convergence test with invariants
# armed: at-rest bit rot lands on random replicas while hosts crash under
# RPC faults, and the scrubber must detect, quarantine, and heal every
# damaged copy from a peer with zero wrong-bytes files (DESIGN.md §11).
chaos-scrub:
	FICUS_INVARIANTS=1 $(GO) test -race -count=1 -run 'TestChaosScrubConvergence' -v .

# chaos-slow runs the slow-peer convergence test with invariants armed:
# heavy-tailed latency on every link, one persistently slow link forcing
# hedged pulls, and one peer that hangs mid-run — accepts RPCs, runs the
# handlers, never replies.  Propagation must stay within its per-pass tick
# budget throughout and converge once the peer answers (DESIGN.md §14).
chaos-slow:
	FICUS_INVARIANTS=1 $(GO) test -race -count=1 -run 'TestChaosSlowPeerConvergence' -v .

# chaos-gossip runs the large-cluster churn test with invariants armed:
# 256 hosts on the epidemic notification plane (fanout 3, TTL 6) under
# crashes, shifting partitions, lossy links, and replica-set churn, three
# seeds; budgeted anti-entropy must converge every replica to the identical
# tree with origin notification cost held at O(fanout) (DESIGN.md §15).
chaos-gossip:
	FICUS_INVARIANTS=1 $(GO) test -race -count=1 -timeout 2400s -run 'TestChaosGossipChurnConvergence' -v .

# bench regenerates BENCH_PR3.json (batched propagation E10, wire-codec
# micros), BENCH_PR9.json (hedged-pull tail latency E14), and
# BENCH_PR10.json (gossip vs flat notification scaling E15).
bench:
	sh scripts/bench.sh

# check is the full gate: static analysis plus the race-enabled suite.
check: vet lint race invariants

# ci is the single gate scripts/ci.sh runs; identical to what check does
# plus a plain build, in one shell script usable outside make.
ci:
	./scripts/ci.sh
