GO ?= go

.PHONY: all build test check race vet chaos

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# chaos runs the whole-system property tests, including the flaky-link
# variant that keeps the fault plane enabled through final convergence.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# check is the full gate: static analysis plus the race-enabled suite.
check: vet race
