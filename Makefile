GO ?= go

.PHONY: all build test check race vet lint invariants chaos bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint builds and runs ficusvet, the repo-specific analyzer suite
# (determinism, vvalias, errclass — see DESIGN.md §8).
lint:
	$(GO) build -o /dev/null ./cmd/ficusvet
	$(GO) run ./cmd/ficusvet ./...

race:
	$(GO) test -race ./...

# invariants re-runs the suite with the runtime invariant checks armed
# (internal/invariant; free when the env var is unset).
invariants:
	FICUS_INVARIANTS=1 $(GO) test -count=1 ./...

# chaos runs the whole-system property tests, including the flaky-link
# variant that keeps the fault plane enabled through final convergence.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# bench regenerates BENCH_PR3.json: the batched-propagation experiment
# (E10) and the repl wire-codec microbenchmarks.
bench:
	sh scripts/bench.sh

# check is the full gate: static analysis plus the race-enabled suite.
check: vet lint race invariants

# ci is the single gate scripts/ci.sh runs; identical to what check does
# plus a plain build, in one shell script usable outside make.
ci:
	./scripts/ci.sh
