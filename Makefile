GO ?= go

.PHONY: all build test check race vet lint invariants chaos chaos-crash chaos-scrub bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint builds and runs ficusvet, the repo-specific analyzer suite
# (determinism, vvalias, errclass — see DESIGN.md §8).
lint:
	$(GO) build -o /dev/null ./cmd/ficusvet
	$(GO) run ./cmd/ficusvet ./...

race:
	$(GO) test -race ./...

# invariants re-runs the suite with the runtime invariant checks armed
# (internal/invariant; free when the env var is unset).
invariants:
	FICUS_INVARIANTS=1 $(GO) test -count=1 ./...

# chaos runs the whole-system property tests, including the flaky-link
# variant that keeps the fault plane enabled through final convergence.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# chaos-crash runs the crash–restart convergence test with the runtime
# invariant checks armed: random hosts power-fail and reboot
# mid-propagation under RPC faults, and every replica must converge from
# its durable on-disk state (DESIGN.md §10).
chaos-crash:
	FICUS_INVARIANTS=1 $(GO) test -race -count=1 -run 'TestChaosCrashRestartConvergence' -v .

# chaos-scrub runs the silent-corruption convergence test with invariants
# armed: at-rest bit rot lands on random replicas while hosts crash under
# RPC faults, and the scrubber must detect, quarantine, and heal every
# damaged copy from a peer with zero wrong-bytes files (DESIGN.md §11).
chaos-scrub:
	FICUS_INVARIANTS=1 $(GO) test -race -count=1 -run 'TestChaosScrubConvergence' -v .

# bench regenerates BENCH_PR3.json: the batched-propagation experiment
# (E10) and the repl wire-codec microbenchmarks.
bench:
	sh scripts/bench.sh

# check is the full gate: static analysis plus the race-enabled suite.
check: vet lint race invariants

# ci is the single gate scripts/ci.sh runs; identical to what check does
# plus a plain build, in one shell script usable outside make.
ci:
	./scripts/ci.sh
