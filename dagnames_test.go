package ficus

import "testing"

// TestDirectoryGainsMultipleNames pins paper §2.5 fn3: "When
// non-communicating directory replicas are concurrently given new names, it
// is often later necessary to retain multiple names" — Ficus directories
// form a DAG and one directory may be reachable under several names.
func TestDirectoryGainsMultipleNames(t *testing.T) {
	c := newTestCluster(t, 2)
	m0, _ := c.Mount(0)
	m1, _ := c.Mount(1)
	if err := m0.MkdirAll("/project"); err != nil {
		t.Fatal(err)
	}
	if err := m0.WriteFile("/project/notes", []byte("shared contents")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}

	// Partitioned: both sides rename the same directory (within the same
	// parent) to different names.
	c.Partition([]int{0}, []int{1})
	if err := m0.Rename("/project", "/project-v2"); err != nil {
		t.Fatal(err)
	}
	if err := m1.Rename("/project", "/project-final"); err != nil {
		t.Fatal(err)
	}
	c.Heal()
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}

	// Both names survive on both hosts, and they denote the SAME directory:
	// the file is reachable through either name, and an update through one
	// name is visible through the other.
	for host, m := range map[int]*Mount{0: m0, 1: m1} {
		for _, name := range []string{"/project-v2", "/project-final"} {
			data, err := m.ReadFile(name + "/notes")
			if err != nil || string(data) != "shared contents" {
				t.Fatalf("host %d %s: %q %v", host, name, data, err)
			}
		}
		stA, err := m.Stat("/project-v2")
		if err != nil {
			t.Fatal(err)
		}
		stB, err := m.Stat("/project-final")
		if err != nil {
			t.Fatal(err)
		}
		if stA.FileID != stB.FileID {
			t.Fatalf("host %d: the two names denote different directories: %s vs %s", host, stA.FileID, stB.FileID)
		}
		// The old name is gone.
		if _, err := m.Stat("/project"); err == nil {
			t.Fatalf("host %d: old name survived", host)
		}
	}

	// An update through one name appears through the other (same host —
	// they share one replica container).
	if err := m0.WriteFile("/project-v2/new-file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := m0.ReadFile("/project-final/new-file"); err != nil {
		t.Fatalf("update through one name invisible through the other: %v", err)
	}
	// And structural consistency holds everywhere.
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	if probs, err := c.Fsck(); err != nil || len(probs) != 0 {
		t.Fatalf("fsck: %v %v", probs, err)
	}
}
