package ficus

// Crash–restart chaos: random hosts power-fail and reboot mid-propagation
// while the RPC fault plane is live.  A crash loses every in-memory
// structure — mounts, caches, peer health, and any notification in flight —
// but keeps the disks; a restart remounts from those disks, replays the
// durable new-version cache journal, and owes one anti-entropy rescan.
// Whatever interleaving the seed produces, the cluster must converge to
// identical namespaces with no lost updates and every checker clean.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestChaosCrashRestartConvergence(t *testing.T) {
	const hosts = 3
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(hosts, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			c.InjectFaults(FaultConfig{
				RPCFailRate:      0.05,
				ReplyLossRate:    0.05,
				DatagramLossRate: 0.10,
				DatagramDupRate:  0.05,
				ReorderRate:      0.10,
			})

			// tolerate: chaos ops may fail for availability reasons — the
			// issuing host is crashed, the target replica is crashed or cut
			// off, a concurrent namespace raced us — never with
			// corruption-class errors.
			tolerate := func(err error) {
				if err == nil {
					return
				}
				if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotExist) ||
					errors.Is(err, ErrExist) || errors.Is(err, ErrConflict) ||
					errors.Is(err, core.ErrHostDown) {
					return
				}
				s := err.Error()
				if strings.Contains(s, "not empty") || strings.Contains(s, "is a directory") ||
					strings.Contains(s, "not a directory") || strings.Contains(s, "stale") ||
					strings.Contains(s, "not stored") || strings.Contains(s, "unreachable") {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			// mountOf: crash kills mounts, so take a fresh one per op.
			mountOf := func(h int) *Mount {
				m, err := c.Mount(h)
				if err != nil {
					tolerate(err)
					return nil
				}
				return m
			}
			name := func() string { return fmt.Sprintf("f%d", rng.Intn(10)) }

			// Keep files: committed on a host and settled cluster-wide
			// before any crash of that host — these may never disappear.
			keep := map[string]string{}
			m0 := mountOf(0)
			for i := 0; i < 3; i++ {
				k := fmt.Sprintf("keep%d", i)
				v := fmt.Sprintf("sacred %d", i)
				if err := m0.WriteFile("/"+k, []byte(v)); err != nil {
					t.Fatal(err)
				}
				keep["/"+k] = v
			}
			if err := c.Settle(20); err != nil {
				t.Fatal(err)
			}

			crashes, restarts := 0, 0
			for step := 0; step < 150; step++ {
				h := rng.Intn(hosts)
				switch rng.Intn(12) {
				case 0, 1, 2, 3:
					if m := mountOf(h); m != nil {
						tolerate(m.WriteFile("/"+name(), []byte(fmt.Sprintf("h%d s%d", h, step))))
					}
				case 4:
					if m := mountOf(h); m != nil {
						_, err := m.ReadFile("/" + name())
						tolerate(err)
					}
				case 5:
					if m := mountOf(h); m != nil {
						tolerate(m.Remove("/" + name()))
					}
				case 6, 7:
					if _, err := c.Propagate(); err != nil {
						t.Fatalf("propagate: %v", err)
					}
				case 8:
					if _, err := c.Reconcile(); err != nil {
						t.Fatalf("reconcile: %v", err)
					}
				case 9, 10: // power-fail a random up host (never all of them)
					up := 0
					for i := 0; i < hosts; i++ {
						if !c.HostDown(i) {
							up++
						}
					}
					if up > 1 && !c.HostDown(h) {
						c.CrashHost(h)
						crashes++
					}
				case 11:
					if c.HostDown(h) {
						if err := c.RestartHost(h); err != nil {
							t.Fatalf("restart %d: %v", h, err)
						}
						restarts++
					}
				}
			}
			if crashes == 0 {
				t.Fatal("chaos run never crashed a host; broaden the schedule")
			}

			// Reboot the world, lift the faults, converge.
			for i := 0; i < hosts; i++ {
				if c.HostDown(i) {
					if err := c.RestartHost(i); err != nil {
						t.Fatalf("final restart %d: %v", i, err)
					}
				}
			}
			c.ClearFaults()
			c.Heal()
			if err := c.Settle(40); err != nil {
				t.Fatal(err)
			}

			// Identical namespaces everywhere.
			ref := treeOf(t, c, 0, false)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, false); got != ref {
					t.Fatalf("namespace diverged between host 0 and host %d (crashes=%d restarts=%d):\n--- host 0:\n%s\n--- host %d:\n%s",
						i, crashes, restarts, ref, i, got)
				}
			}

			// Resolve conflicts (each logical file once per round), then
			// even contents must agree.
			for iter := 0; iter < 5 && len(c.Conflicts()) > 0; iter++ {
				resolved := map[string]bool{}
				for _, conf := range c.Conflicts() {
					if resolved[conf.FileID] {
						continue
					}
					resolved[conf.FileID] = true
					if err := c.Resolve(conf, []byte("crash-chaos-resolved")); err != nil {
						t.Fatalf("resolve: %v", err)
					}
				}
				if err := c.Settle(30); err != nil {
					t.Fatal(err)
				}
			}
			if n := len(c.Conflicts()); n != 0 {
				t.Fatalf("%d conflicts survived resolution", n)
			}
			refFull := treeOf(t, c, 0, true)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, true); got != refFull {
					t.Fatalf("contents diverged:\n--- host 0:\n%s\n--- host %d:\n%s", refFull, i, got)
				}
			}

			// No lost updates: every keep-file is present with its settled
			// contents on every host.
			for i := 0; i < hosts; i++ {
				m, err := c.Mount(i)
				if err != nil {
					t.Fatal(err)
				}
				for path, want := range keep {
					data, err := m.ReadFile(path)
					if err != nil || string(data) != want {
						t.Fatalf("host %d lost %s: %q, %v", i, path, data, err)
					}
				}
			}

			// Every replica structurally clean.
			probs, err := c.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 0 {
				t.Fatalf("fsck problems:\n%s", strings.Join(probs, "\n"))
			}
		})
	}
}
