package ficus

// Silent-corruption chaos: at-rest bit rot strikes random replicas while
// hosts crash and the RPC fault plane is live.  The damage is silent —
// reads of a rotted copy succeed with wrong bytes until a scrub pass or a
// replication read notices the checksum mismatch — so the scrubber is the
// only line of defense.  Whatever interleaving the seed produces, the
// cluster must converge with every file byte-identical to an undamaged
// copy: corruption is detected, never propagated, and healed from a peer.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestChaosScrubConvergence(t *testing.T) {
	const hosts = 3
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(hosts, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			c.InjectFaults(FaultConfig{
				RPCFailRate:      0.05,
				ReplyLossRate:    0.05,
				DatagramLossRate: 0.10,
				ReorderRate:      0.10,
			})

			tolerate := func(err error) {
				if err == nil {
					return
				}
				if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotExist) ||
					errors.Is(err, ErrExist) || errors.Is(err, ErrConflict) ||
					errors.Is(err, core.ErrHostDown) || errors.Is(err, core.ErrNoLocalReplica) {
					return
				}
				s := err.Error()
				if strings.Contains(s, "not empty") || strings.Contains(s, "is a directory") ||
					strings.Contains(s, "not a directory") || strings.Contains(s, "stale") ||
					strings.Contains(s, "not stored") || strings.Contains(s, "unreachable") ||
					strings.Contains(s, "no storage") {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			mountOf := func(h int) *Mount {
				m, err := c.Mount(h)
				if err != nil {
					tolerate(err)
					return nil
				}
				return m
			}
			name := func() string { return fmt.Sprintf("f%d", rng.Intn(10)) }

			// Keep files: settled cluster-wide before any fault, and never
			// rewritten by the chaos schedule — the fault-free reference
			// contents every surviving replica must end up byte-identical to.
			keep := map[string]string{}
			m0 := mountOf(0)
			for i := 0; i < 4; i++ {
				k := fmt.Sprintf("keep%d", i)
				v := fmt.Sprintf("sacred bytes %d", i)
				if err := m0.WriteFile("/"+k, []byte(v)); err != nil {
					t.Fatal(err)
				}
				keep["/"+k] = v
			}
			if err := c.Settle(20); err != nil {
				t.Fatal(err)
			}
			keepName := func() string { return fmt.Sprintf("/keep%d", rng.Intn(4)) }

			rots, crashes := 0, 0
			for step := 0; step < 150; step++ {
				h := rng.Intn(hosts)
				switch rng.Intn(14) {
				case 0, 1, 2:
					if m := mountOf(h); m != nil {
						tolerate(m.WriteFile("/"+name(), []byte(fmt.Sprintf("h%d s%d", h, step))))
					}
				case 3:
					if m := mountOf(h); m != nil {
						_, err := m.ReadFile("/" + name())
						tolerate(err)
					}
				case 4:
					if m := mountOf(h); m != nil {
						tolerate(m.Remove("/" + name()))
					}
				case 5, 6:
					if _, err := c.Propagate(); err != nil {
						t.Fatalf("propagate: %v", err)
					}
				case 7:
					if _, err := c.Reconcile(); err != nil {
						t.Fatalf("reconcile: %v", err)
					}
				case 8, 9: // silent bit rot, but never on host 0: one replica
					// of every keep file stays pristine, so repair always has
					// a healthy source and Unrepairable must end at zero.
					if h != 0 {
						if err := c.InjectBitRot(h, keepName(), uint64(rng.Intn(8))); err != nil {
							tolerate(err)
						} else {
							rots++
						}
					}
				case 10: // a scrub pass races the chaos
					if _, err := c.ScrubHost(h); err != nil {
						tolerate(err)
					}
				case 11: // power-fail a random up host (never all of them)
					up := 0
					for i := 0; i < hosts; i++ {
						if !c.HostDown(i) {
							up++
						}
					}
					if up > 1 && !c.HostDown(h) {
						c.CrashHost(h)
						crashes++
					}
				case 12, 13:
					if c.HostDown(h) {
						if err := c.RestartHost(h); err != nil {
							t.Fatalf("restart %d: %v", h, err)
						}
					}
				}
			}
			if crashes == 0 {
				t.Fatal("chaos run never crashed a host; broaden the schedule")
			}

			// Reboot the world and lift the RPC faults.  Quarantine state and
			// integrity counters are in-memory, so a crash forgets them — the
			// guaranteed post-restart rot below makes the final accounting
			// independent of which pre-crash detections survived.
			for i := 0; i < hosts; i++ {
				if c.HostDown(i) {
					if err := c.RestartHost(i); err != nil {
						t.Fatalf("final restart %d: %v", i, err)
					}
				}
			}
			c.ClearFaults()
			c.Heal()
			if err := c.InjectBitRot(1, "/keep0", 3); err != nil {
				t.Fatalf("post-restart bit rot: %v", err)
			}
			rots++
			if err := c.Settle(40); err != nil {
				t.Fatal(err)
			}

			// Scrub until the quarantine drains: every damaged replica is
			// detected and healed from a peer.
			drained := false
			for pass := 0; pass < 25 && !drained; pass++ {
				if _, err := c.Scrub(); err != nil {
					t.Fatalf("scrub pass %d: %v", pass, err)
				}
				quar := uint64(0)
				for i := 0; i < hosts; i++ {
					quar += c.IntegrityStatsFor(i).Quarantined
				}
				drained = quar == 0
			}
			if !drained {
				for i := 0; i < hosts; i++ {
					t.Logf("host %d integrity: %+v", i, c.IntegrityStatsFor(i))
				}
				t.Fatal("quarantine never drained despite healthy peers")
			}
			if err := c.Settle(30); err != nil {
				t.Fatal(err)
			}

			// Identical namespaces everywhere.
			ref := treeOf(t, c, 0, false)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, false); got != ref {
					t.Fatalf("namespace diverged between host 0 and host %d (rots=%d crashes=%d):\n--- host 0:\n%s\n--- host %d:\n%s",
						i, rots, crashes, ref, i, got)
				}
			}

			// Resolve update conflicts, then contents must agree everywhere.
			for iter := 0; iter < 5 && len(c.Conflicts()) > 0; iter++ {
				resolved := map[string]bool{}
				for _, conf := range c.Conflicts() {
					if resolved[conf.FileID] {
						continue
					}
					resolved[conf.FileID] = true
					if err := c.Resolve(conf, []byte("scrub-chaos-resolved")); err != nil {
						t.Fatalf("resolve: %v", err)
					}
				}
				if err := c.Settle(30); err != nil {
					t.Fatal(err)
				}
			}
			if n := len(c.Conflicts()); n != 0 {
				t.Fatalf("%d conflicts survived resolution", n)
			}
			refFull := treeOf(t, c, 0, true)
			for i := 1; i < hosts; i++ {
				if got := treeOf(t, c, i, true); got != refFull {
					t.Fatalf("contents diverged:\n--- host 0:\n%s\n--- host %d:\n%s", refFull, i, got)
				}
			}

			// Zero wrong-bytes files: every keep file reads back its settled
			// fault-free contents on every host.  Keep files were never
			// rewritten, so any deviation would be propagated corruption.
			for i := 0; i < hosts; i++ {
				m, err := c.Mount(i)
				if err != nil {
					t.Fatal(err)
				}
				for path, want := range keep {
					data, err := m.ReadFile(path)
					if err != nil || string(data) != want {
						t.Fatalf("host %d serves wrong bytes for %s: %q, %v (rots=%d)", i, path, data, err, rots)
					}
				}
			}

			// Final integrity accounting: damage was seen and healed, and
			// nothing was declared unrepairable while host 0 stayed pristine.
			var total IntegrityStats
			for i := 0; i < hosts; i++ {
				s := c.IntegrityStatsFor(i)
				total.CorruptionsDetected += s.CorruptionsDetected
				total.Repaired += s.Repaired
				total.Unrepairable += s.Unrepairable
			}
			if total.CorruptionsDetected == 0 {
				t.Fatalf("no corruption detected across %d successful injections", rots)
			}
			if total.Repaired == 0 {
				t.Fatal("no quarantined version was healed from a peer")
			}
			if total.Unrepairable != 0 {
				t.Fatalf("Unrepairable = %d with a healthy replica always available", total.Unrepairable)
			}

			// Every replica structurally clean.
			probs, err := c.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 0 {
				t.Fatalf("fsck problems:\n%s", strings.Join(probs, "\n"))
			}
		})
	}
}
