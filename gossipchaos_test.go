package ficus

// Large-cluster gossip tests: the epidemic notification plane and the
// health-aware anti-entropy scheduler under churn.
//
//   - Storm idempotence: with every notification datagram duplicated and
//     every multicast reordered, duplicate suppression must make the wire
//     noise invisible — per-host state identical to a fault-free run.
//   - Partial replica sets: rumors for a volume travel only among the hosts
//     storing it; bystanders see zero gossip traffic.
//   - Churn chaos at 256 hosts: crashes, partitions, lossy links, and
//     replica-set churn, then convergence to identical trees with every
//     checker clean — while each origin's notification cost stays O(fanout),
//     not O(n).

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vnode"
)

// replicaTreeOf renders one host's LOCAL physical replica of vol as sorted
// lines, walking the store directly — no mounts, no NFS, no codec.  This is
// both faster than a mounted walk at 256 hosts (a mounted read funnels every
// entry through the RPC stack) and a stronger convergence check: each
// replica's own on-disk state must agree, not merely the merged logical view.
func replicaTreeOf(tb testing.TB, c *Cluster, host int, vol Volume, contents bool) string {
	tb.Helper()
	l := c.Host(host).LocalReplica(vol.h)
	if l == nil {
		tb.Fatalf("host %d stores no replica of volume %s", host, vol.h)
	}
	root, err := l.Root()
	if err != nil {
		tb.Fatalf("host %d root: %v", host, err)
	}
	var lines []string
	var walk func(dir vnode.Vnode, path string)
	walk = func(dir vnode.Vnode, path string) {
		ents, err := dir.Readdir()
		if err != nil {
			tb.Fatalf("host %d readdir %s: %v", host, path, err)
		}
		for _, e := range ents {
			full := path + "/" + e.Name
			child, err := dir.Lookup(e.Name)
			if err != nil {
				tb.Fatalf("host %d lookup %s: %v", host, full, err)
			}
			if e.Type == vnode.VDir {
				lines = append(lines, full+"/")
				walk(child, full)
				continue
			}
			if contents {
				data, err := vnode.ReadFile(child)
				if err != nil {
					tb.Fatalf("host %d read %s: %v", host, full, err)
				}
				lines = append(lines, fmt.Sprintf("%s=%q", full, data))
			} else {
				lines = append(lines, full)
			}
		}
	}
	walk(root, "")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// gossipAll installs one gossip config on every host.
func gossipAll(c *Cluster, cfg GossipConfig) {
	c.ConfigureGossip(cfg)
}

// nvcSnapshot renders every host's pending new-version cache — (file,
// origin, seen) per entry — as one deterministic string.
func nvcSnapshot(c *Cluster) string {
	var lines []string
	for i := 0; i < c.NumHosts(); i++ {
		for _, l := range c.Host(i).LocalReplicas() {
			for _, nv := range l.PendingVersions() {
				lines = append(lines, fmt.Sprintf("h%d %s o%d seen=%d", i, nv.File, nv.Origin, nv.Seen))
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestGossipStormIdempotence runs the same 64-host write workload three
// times: on a clean network, with every datagram duplicated, and with
// duplication plus reordered multicast fan-out.
//
// Duplication alone must be invisible above the suppression layer — a dup
// always trails some copy of the same rumor on the same link, so host state
// (notifications seen, new-version cache entries and their Seen counts)
// must be byte-identical to the clean run.  Reordering additionally permutes
// the relay tree (a rumor's first arrival path decides who relays where), so
// coverage may legitimately differ; what must still hold on every host is
// first-seen semantics: NotificationsSeen == rumors accepted, never more
// than one acceptance per originated rumor, and a storm of duplicates
// actually hitting the suppression cache instead of the NVC.
func TestGossipStormIdempotence(t *testing.T) {
	const hosts = 64
	run := func(faults FaultConfig) (string, string, NetStats, []GossipStats, []uint64) {
		c, err := NewCluster(hosts, WithSeed(5), WithPolicy(FirstAvailable))
		if err != nil {
			t.Fatal(err)
		}
		gossipAll(c, GossipConfig{Fanout: 3, TTL: 5})
		c.InjectFaults(faults)
		for w := 0; w < 8; w++ {
			m, err := c.Mount(w * 8)
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < 3; f++ {
				name := fmt.Sprintf("/h%d-f%d", w*8, f)
				if err := m.WriteFile(name, []byte(name)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var seen []string
		gs := make([]GossipStats, hosts)
		vals := make([]uint64, hosts)
		for i := 0; i < hosts; i++ {
			vals[i] = c.Host(i).NotificationsSeen()
			seen = append(seen, fmt.Sprintf("h%d seen=%d", i, vals[i]))
			gs[i] = c.GossipStatsFor(i)
		}
		return strings.Join(seen, "\n"), nvcSnapshot(c), c.NetworkStats(), gs, vals
	}

	cleanSeen, cleanNVC, _, _, _ := run(FaultConfig{})
	dupSeen, dupNVC, dupNS, _, _ := run(FaultConfig{DatagramDupRate: 1.0})
	if dupNS.DatagramsDuplicated == 0 {
		t.Fatalf("fault plane idle: %+v", dupNS)
	}
	if dupNS.GossipSuppressed == 0 {
		t.Fatal("no duplicate rumor was ever suppressed under dup-rate 1.0")
	}
	if dupSeen != cleanSeen {
		t.Fatalf("NotificationsSeen diverged under duplication:\n--- clean:\n%s\n--- noisy:\n%s", cleanSeen, dupSeen)
	}
	if dupNVC != cleanNVC {
		t.Fatalf("new-version caches diverged under duplication:\n--- clean:\n%s\n--- noisy:\n%s", cleanNVC, dupNVC)
	}

	_, _, stormNS, stormGS, stormSeen := run(FaultConfig{DatagramDupRate: 1.0, ReorderRate: 1.0})
	if stormNS.MulticastsReordered == 0 || stormNS.GossipSuppressed == 0 {
		t.Fatalf("storm plane idle: %+v", stormNS)
	}
	var originated uint64
	for _, g := range stormGS {
		originated += g.RumorsOriginated
	}
	for i, g := range stormGS {
		// One NVC feed per accepted rumor (one replica per host, no
		// co-resident or legacy traffic in this rig) — a duplicate that
		// leaked past suppression would break the equality — and no host
		// can accept a rumor more than once however many copies arrive.
		if stormSeen[i] != g.RumorsAccepted {
			t.Fatalf("host %d: NotificationsSeen=%d but RumorsAccepted=%d under the storm",
				i, stormSeen[i], g.RumorsAccepted)
		}
		if g.RumorsAccepted > originated {
			t.Fatalf("host %d accepted %d rumors of %d originated", i, g.RumorsAccepted, originated)
		}
	}
}

// TestGossipPartialReplicaSets: a volume stored by 4 of 8 hosts gossips only
// among those 4.  Bystanders receive nothing (the rendezvous sample draws
// exclusively from the volume's location table), and replica-set churn
// moves a host in and out of the rumor flow.
func TestGossipPartialReplicaSets(t *testing.T) {
	const hosts = 8
	c, err := NewCluster(hosts, WithSeed(3), WithPolicy(FirstAvailable))
	if err != nil {
		t.Fatal(err)
	}
	gossipAll(c, GossipConfig{Fanout: 2, TTL: 3})
	vol, err := c.NewVolume(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{1, 2, 3} {
		if err := c.ReplicateVolume(vol, h); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.MountVolume(0, vol)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{1, 2, 3} {
		if got := c.GossipStatsFor(h); got.RumorsAccepted == 0 {
			t.Fatalf("holder %d accepted no rumor: %+v", h, got)
		}
	}
	for h := 4; h < hosts; h++ {
		gs := c.GossipStatsFor(h)
		if gs.RumorsAccepted != 0 || gs.RumorsForeign != 0 || gs.RumorsRelayed != 0 {
			t.Fatalf("bystander %d touched by gossip: %+v", h, gs)
		}
		if n := c.Host(h).NotificationsSeen(); n != 0 {
			t.Fatalf("bystander %d saw %d notifications", h, n)
		}
	}

	// Churn host 4 into the replica set: it joins the rumor flow.
	if err := c.ReplicateVolume(vol, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if gs := c.GossipStatsFor(4); gs.RumorsAccepted == 0 {
		t.Fatalf("new holder 4 still outside the rumor flow: %+v", gs)
	}
	// And churn host 3 out: no new rumors reach it.
	if err := c.DropReplica(vol, 3); err != nil {
		t.Fatal(err)
	}
	before := c.GossipStatsFor(3)
	if err := m.WriteFile("/c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	after := c.GossipStatsFor(3)
	if after.RumorsAccepted != before.RumorsAccepted {
		t.Fatalf("dropped holder 3 still accepts rumors: %+v -> %+v", before, after)
	}
}

// TestChaosGossipChurnConvergence is the tentpole chaos run: 256 hosts, the
// gossip plane on (fanout 3, TTL 6) with a 2-peer reconciliation budget,
// under crash–restart churn, shifting partitions, a lossy datagram plane
// with extra per-link loss, and replica-set churn on a side volume.  After
// the churn window closes, budgeted anti-entropy alone must converge every
// host to the identical namespace, conflicts must resolve, both checkers
// must come back clean — and the origin-side notification cost must have
// stayed at O(fanout) per update.
func TestChaosGossipChurnConvergence(t *testing.T) {
	const hosts = 256
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(hosts, WithSeed(seed), WithPolicy(FirstAvailable),
				WithStorage(4096, 512))
			if err != nil {
				t.Fatal(err)
			}
			gossipAll(c, GossipConfig{Fanout: 3, TTL: 6, ReconPeers: 2})
			c.InjectFaults(FaultConfig{
				RPCFailRate:      0.02,
				DatagramLossRate: 0.15,
				DatagramDupRate:  0.05,
				ReorderRate:      0.2,
			})
			// A few asymmetric trouble spots on top of the global loss.
			for i := 0; i < 8; i++ {
				c.SetLinkDatagramLoss(rng.Intn(hosts), rng.Intn(hosts), 0.9)
			}

			tolerate := func(err error) {
				if err == nil {
					return
				}
				if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotExist) ||
					errors.Is(err, ErrExist) || errors.Is(err, ErrConflict) ||
					errors.Is(err, core.ErrHostDown) {
					return
				}
				s := err.Error()
				if strings.Contains(s, "not empty") || strings.Contains(s, "stale") ||
					strings.Contains(s, "not stored") || strings.Contains(s, "unreachable") {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}

			// A side volume on a small subset, churned during the run.
			vol2, err := c.NewVolume(1)
			if err != nil {
				t.Fatal(err)
			}
			vol2Holders := map[int]bool{1: true}
			for _, h := range []int{33, 77, 130} {
				if err := c.ReplicateVolume(vol2, h); err != nil {
					t.Fatal(err)
				}
				vol2Holders[h] = true
			}

			writers := []int{0, 16, 48, 90, 128, 170, 200, 255}
			upCount := func() int {
				n := 0
				for i := 0; i < hosts; i++ {
					if !c.HostDown(i) {
						n++
					}
				}
				return n
			}
			crashes := 0
			for step := 0; step < 90; step++ {
				switch rng.Intn(12) {
				case 0, 1, 2, 3, 4: // host-owned writes on the root volume
					w := writers[rng.Intn(len(writers))]
					if c.HostDown(w) {
						continue
					}
					m, err := c.Mount(w)
					if err != nil {
						tolerate(err)
						continue
					}
					name := fmt.Sprintf("/h%d-f%d", w, rng.Intn(4))
					tolerate(m.WriteFile(name, []byte(fmt.Sprintf("h%d s%d", w, step))))
				case 5: // write on the side volume from one of its holders
					var hs []int
					for h := range vol2Holders {
						if !c.HostDown(h) {
							hs = append(hs, h)
						}
					}
					if len(hs) == 0 {
						continue
					}
					sort.Ints(hs)
					h := hs[rng.Intn(len(hs))]
					m, err := c.MountVolume(h, vol2)
					if err != nil {
						tolerate(err)
						continue
					}
					tolerate(m.WriteFile(fmt.Sprintf("/side-h%d", h), []byte(fmt.Sprintf("s%d", step))))
				case 6: // crash a random up host (keep a quorum of the world up)
					h := rng.Intn(hosts)
					if !c.HostDown(h) && upCount() > hosts-12 {
						c.CrashHost(h)
						crashes++
					}
				case 7: // restart a random down host
					for i := 0; i < hosts; i++ {
						h := (rng.Intn(hosts) + i) % hosts
						if c.HostDown(h) {
							if err := c.RestartHost(h); err != nil {
								t.Fatalf("restart %d: %v", h, err)
							}
							break
						}
					}
				case 8: // shifting partitions
					switch rng.Intn(3) {
					case 0:
						c.PartitionSplit(rng.Intn(hosts-2) + 1)
					case 1:
						k := rng.Intn(7) + 2
						c.PartitionFunc(func(h int) bool { return h%k == 0 })
					case 2:
						c.HealAll()
					}
				case 9: // replica-set churn on the side volume, up hosts only
					if rng.Intn(2) == 0 {
						h := rng.Intn(hosts)
						if !vol2Holders[h] && !c.HostDown(h) && !c.HostDown(1) {
							if err := c.ReplicateVolume(vol2, h); err != nil {
								tolerate(err)
							} else {
								vol2Holders[h] = true
							}
						}
					} else if len(vol2Holders) > 2 {
						var hs []int
						for h := range vol2Holders {
							if h != 1 && !c.HostDown(h) {
								hs = append(hs, h)
							}
						}
						sort.Ints(hs)
						if len(hs) > 0 {
							h := hs[rng.Intn(len(hs))]
							if err := c.DropReplica(vol2, h); err != nil {
								tolerate(err)
							} else {
								delete(vol2Holders, h)
							}
						}
					}
				case 10:
					if _, err := c.Propagate(); err != nil {
						t.Fatalf("propagate: %v", err)
					}
				case 11:
					if _, err := c.Reconcile(); err != nil {
						t.Fatalf("reconcile: %v", err)
					}
				}
			}
			if crashes == 0 {
				t.Fatal("churn window never crashed a host; broaden the schedule")
			}

			// Close the churn window: reboot the world, heal, lift the faults.
			for i := 0; i < hosts; i++ {
				if c.HostDown(i) {
					if err := c.RestartHost(i); err != nil {
						t.Fatalf("final restart %d: %v", i, err)
					}
				}
			}
			c.HealAll()
			c.ClearFaults()

			// Converge by budgeted anti-entropy: each pass visits only
			// ReconPeers=2 of 255 peers per host, so the scheduler's rotation
			// — not sweep breadth — is what must reach every peer.  Budgeted
			// quiescence can be false (a pass that visits two in-sync peers
			// changes nothing), so converge on tree equality, not on
			// stats-quiet passes.
			if _, err := c.Propagate(); err != nil {
				t.Fatal(err)
			}
			rootVol := c.RootVolume()
			treesEqual := func() bool {
				ref := replicaTreeOf(t, c, 0, rootVol, false)
				for i := 1; i < hosts; i++ {
					if replicaTreeOf(t, c, i, rootVol, false) != ref {
						return false
					}
				}
				return true
			}
			converged := false
			for pass := 0; pass < 240 && !converged; pass++ {
				if _, err := c.Reconcile(); err != nil {
					t.Fatalf("reconcile: %v", err)
				}
				if pass%8 == 7 {
					converged = treesEqual()
				}
			}
			if !converged {
				t.Fatalf("namespaces still diverged after 240 budgeted passes (crashes=%d)", crashes)
			}

			// Resolve whatever conflicts partitioned writes produced (each
			// logical file once per round), then contents must agree.
			for iter := 0; iter < 5 && len(c.Conflicts()) > 0; iter++ {
				resolved := map[string]bool{}
				for _, conf := range c.Conflicts() {
					if resolved[conf.FileID] {
						continue
					}
					resolved[conf.FileID] = true
					if err := c.Resolve(conf, []byte("gossip-chaos-resolved")); err != nil {
						t.Fatalf("resolve: %v", err)
					}
				}
				for pass := 0; pass < 120 && len(c.Conflicts()) > 0; pass++ {
					if _, err := c.Reconcile(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if n := len(c.Conflicts()); n != 0 {
				t.Fatalf("%d conflicts survived resolution", n)
			}
			refFull := replicaTreeOf(t, c, 0, rootVol, true)
			for i := 1; i < hosts; i++ {
				if got := replicaTreeOf(t, c, i, rootVol, true); got != refFull {
					t.Fatalf("contents diverged:\n--- host 0:\n%s\n--- host %d:\n%s", refFull, i, got)
				}
			}

			// The side volume's surviving holders agree too.
			var hs []int
			for h := range vol2Holders {
				hs = append(hs, h)
			}
			sort.Ints(hs)
			sideRef := replicaTreeOf(t, c, hs[0], vol2, true)
			for _, h := range hs[1:] {
				if got := replicaTreeOf(t, c, h, vol2, true); got != sideRef {
					t.Fatalf("side volume diverged between holders %d and %d:\n%s\nvs\n%s", hs[0], h, sideRef, got)
				}
			}

			// The gossip plane actually carried the load, and origin cost
			// stayed at O(fanout): every host sent at most fanout notices per
			// rumor it originated — never the flat n-1.
			ns := c.NetworkStats()
			if ns.GossipNoticesSent == 0 || ns.GossipRelayed == 0 {
				t.Fatalf("gossip plane idle: %+v", ns)
			}
			for i := 0; i < hosts; i++ {
				gs := c.GossipStatsFor(i)
				if gs.NoticesSent > 3*gs.RumorsOriginated {
					t.Fatalf("host %d sent %d notices for %d rumors: origin cost above fanout",
						i, gs.NoticesSent, gs.RumorsOriginated)
				}
			}

			// Every replica structurally clean.
			probs, err := c.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 0 {
				t.Fatalf("fsck problems:\n%s", strings.Join(probs, "\n"))
			}
		})
	}
}
