package ficus

// Benchmark suite regenerating the paper's evaluation, one benchmark per
// experiment row of DESIGN.md §4 (E1–E9).  Counting-based results (I/Os,
// RPCs, pulls) are attached as custom b.ReportMetric metrics; timing-based
// results are the usual ns/op.  EXPERIMENTS.md records paper-claim vs
// measured for every row.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/avail"
	"repro/internal/baseline"
	"repro/internal/exp"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/vnode"
	"repro/internal/workload"
)

// BenchmarkE1StackComposition times the same lookup+getattr operation
// through each stack shape of paper Figures 1–2: bare UFS, the co-resident
// Ficus stack (NFS elided), the NFS-interposed stack, and the two-replica
// stack.
func BenchmarkE1StackComposition(b *testing.B) {
	for _, kind := range []exp.StackKind{exp.StackUFS, exp.StackFicusLocal, exp.StackFicusLocalCached, exp.StackFicusNFS, exp.StackFicusTwoRepl} {
		b.Run(kind.String(), func(b *testing.B) {
			root, err := exp.BuildStack(kind)
			if err != nil {
				b.Fatal(err)
			}
			if err := exp.PrepareFile(root); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := exp.TouchOp(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2LayerCrossing times the operation through 0..8 interposed
// null layers; the per-layer increment is the paper's §6 "one additional
// procedure call, one pointer indirection, and storage for another vnode
// block".
func BenchmarkE2LayerCrossing(b *testing.B) {
	for _, depth := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nulls=%d", depth), func(b *testing.B) {
			root, err := exp.BuildNullStack(depth)
			if err != nil {
				b.Fatal(err)
			}
			if err := exp.PrepareFile(root); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := exp.TouchOp(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3OpenIOs reports the §6 disk I/O accounting: extra reads on a
// cold-directory open (paper: 4) and on a warm open (paper: 0), with the
// cache-disabled ablation.
func BenchmarkE3OpenIOs(b *testing.B) {
	for _, caches := range []bool{true, false} {
		name := "caches-on"
		if !caches {
			name = "caches-off"
		}
		b.Run(name, func(b *testing.B) {
			var r exp.OpenIOResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = exp.OpenIOCounts(caches)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.ColdDelta()), "extraIOs/cold-open")
			b.ReportMetric(float64(r.WarmDelta()), "extraIOs/warm-open")
			b.ReportMetric(float64(r.FicusColdReads), "ficus-reads/cold-open")
			b.ReportMetric(float64(r.UFSColdReads), "ufs-reads/cold-open")
		})
	}
}

// BenchmarkE4Availability sweeps replica counts and outage models through
// every replica-control policy; the reported metrics are read/update
// availability.  The paper's claim: one-copy availability strictly
// dominates.
func BenchmarkE4Availability(b *testing.B) {
	for _, model := range []avail.Model{avail.HostFailures, avail.Partitions} {
		for _, n := range []int{3, 5} {
			policies := baseline.StandardSet(n)
			s := avail.Scenario{
				Replicas: n, Model: model, FailProb: 0.2, Segments: 3,
				Trials: 20000, Seed: 42,
			}
			var results []avail.Result
			b.Run(fmt.Sprintf("%v/n=%d", model, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					results = avail.Evaluate(s, policies)
				}
				for i, r := range results {
					b.ReportMetric(r.UpdateAvail, fmt.Sprintf("updAvail/p%d", i))
				}
				b.ReportMetric(results[0].UpdateAvail-results[3].UpdateAvail, "oneCopyMinusMajority")
			})
		}
	}
}

// BenchmarkE5PropagationPolicy compares immediate vs delayed update
// propagation under the bursty workload of §3.2.
func BenchmarkE5PropagationPolicy(b *testing.B) {
	cfg := exp.DefaultPropagationConfig()
	run := func(b *testing.B, period int, label string) {
		var row exp.PropagationRow
		var err error
		for i := 0; i < b.N; i++ {
			row, err = exp.RunPropagation(cfg, period, label)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(row.Pulls), "pulls")
		b.ReportMetric(float64(row.RPCBytes), "rpcBytes")
		b.ReportMetric(float64(row.Staleness), "staleness")
	}
	b.Run("immediate", func(b *testing.B) { run(b, 1, "immediate") })
	b.Run("delayed", func(b *testing.B) { run(b, cfg.Delay, "delayed") })
}

// BenchmarkE6Reconciliation times the full partition-churn-heal-reconcile
// cycle and reports the convergence work.
func BenchmarkE6Reconciliation(b *testing.B) {
	for _, hosts := range []int{2, 4} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			var res exp.ReconcileResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.RunReconcileChurn(hosts, 9, 7)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.EntriesAdopted), "entriesAdopted")
			b.ReportMetric(float64(res.FilesPulled), "filesPulled")
			b.ReportMetric(float64(res.FileConflicts), "fileConflicts")
		})
	}
}

// BenchmarkE7OpenOverLookup times opens shipped through the lookup
// encoding across NFS (the §2.3 workaround) against plain lookups on the
// same stack, and reports the name-budget arithmetic.
func BenchmarkE7OpenOverLookup(b *testing.B) {
	root, err := exp.BuildStack(exp.StackFicusNFS)
	if err != nil {
		b.Fatal(err)
	}
	if err := exp.PrepareFile(root); err != nil {
		b.Fatal(err)
	}
	f, err := vnode.Walk(root, "dir/file")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("open+close", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.Open(vnode.OpenRead); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(vnode.OpenRead); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(MaxName), "maxNameBytes")
		b.ReportMetric(255-float64(MaxName), "encodingOverheadBytes")
	})
	b.Run("plain-lookup", func(b *testing.B) {
		d, err := vnode.Walk(root, "dir")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := d.Lookup("file"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8ShadowCommit reports write amplification of the single-file
// atomic commit for point updates to files of growing size (§3.2 fn5).
func BenchmarkE8ShadowCommit(b *testing.B) {
	for _, nb := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("blocks=%d", nb), func(b *testing.B) {
			var rows []exp.ShadowRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = exp.ShadowCommitCost([]int{nb})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].InPlaceWrites), "writes/in-place")
			b.ReportMetric(float64(rows[0].ShadowWrites), "writes/shadow-commit")
		})
	}
}

// BenchmarkE9Autograft reports the RPC cost of autografting: first walk
// (locate+graft), warm walk (graft-table hit) and regraft after pruning.
func BenchmarkE9Autograft(b *testing.B) {
	var res exp.AutograftResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.RunAutograft()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.FirstWalkRPCs), "rpcs/first-walk")
	b.ReportMetric(float64(res.WarmWalkRPCs), "rpcs/warm-walk")
	b.ReportMetric(float64(res.RegraftRPCs), "rpcs/regraft")
}

// BenchmarkEndToEndWriteRead is an overall sanity benchmark of the public
// API on a 3-host cluster.
func BenchmarkEndToEndWriteRead(b *testing.B) {
	c, err := NewCluster(3, WithPolicy(logical.FirstAvailable))
	if err != nil {
		b.Fatal(err)
	}
	m, err := c.Mount(0)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("benchmark payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/bench-%d", i%64)
		if err := m.WriteFile(path, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := m.ReadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWrite writes name=data directly on a replica's physical layer (no
// logical layer, no notifications), returning the FileID — the benchmark
// controls exactly which replica originates every version.
func benchWrite(b *testing.B, l *physical.Layer, name, data string) ids.FileID {
	b.Helper()
	root, err := l.Root()
	if err != nil {
		b.Fatal(err)
	}
	f, err := root.Create(name, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte(data)); err != nil {
		b.Fatal(err)
	}
	a, err := f.Getattr()
	if err != nil {
		b.Fatal(err)
	}
	fid, err := ids.ParseFileID(a.FileID)
	if err != nil {
		b.Fatal(err)
	}
	return fid
}

// BenchmarkE10BatchPropagation measures the batched conditional-pull
// propagation pipeline against the sequential two-RPCs-per-file baseline
// on a 4-host cluster with 256 pending entries spread over 3 origins.
//
//   - batch/fresh:         every entry dominated remotely — data must ship;
//     one PullBatch RPC per origin replaces FileInfo+FileData per file.
//   - batch/all-dominated:  every entry already local — the pass costs at
//     most one RPC per origin and ships no file bytes.
//   - sequential/fresh:     the pre-batching pipeline (per-entry RPCs, one
//     worker) on the identical workload, for the wall-time and RPC deltas
//     recorded in EXPERIMENTS.md row E10.
func BenchmarkE10BatchPropagation(b *testing.B) {
	const nFiles = 256
	const nOrigins = 3 // hosts 1..3 originate; host 0 propagates

	type fileRef struct {
		name   string
		origin int // host index
		fid    ids.FileID
	}

	setup := func(b *testing.B) (*Cluster, []*physical.Layer, []fileRef) {
		c, err := NewCluster(nOrigins+1, WithSeed(42))
		if err != nil {
			b.Fatal(err)
		}
		layers := make([]*physical.Layer, nOrigins+1)
		for i := range layers {
			layers[i] = c.Host(i).LocalReplicas()[0]
		}
		files := make([]fileRef, nFiles)
		for i := range files {
			origin := 1 + i%nOrigins
			name := fmt.Sprintf("o%d-f%d", origin, i)
			fid := benchWrite(b, layers[origin], name, fmt.Sprintf("seed %s", name))
			files[i] = fileRef{name: name, origin: origin, fid: fid}
		}
		// Everybody learns the namespace, then all pending caches drain so
		// the measured passes see exactly the workload we queue.
		if err := c.Settle(50); err != nil {
			b.Fatal(err)
		}
		for i := 0; i <= nOrigins; i++ {
			if _, err := c.Host(i).PropagateOnce(); err != nil {
				b.Fatal(err)
			}
		}
		return c, layers, files
	}

	// rewriteAll makes every origin issue a new version of each of its
	// files and queues the notifications on host 0's pending cache.
	rewriteAll := func(b *testing.B, layers []*physical.Layer, files []fileRef, pass int) {
		for _, f := range files {
			l := layers[f.origin]
			root, err := l.Root()
			if err != nil {
				b.Fatal(err)
			}
			vn, err := root.Lookup(f.name)
			if err != nil {
				b.Fatal(err)
			}
			if err := vnode.WriteFile(vn, []byte(fmt.Sprintf("%s pass %d", f.name, pass))); err != nil {
				b.Fatal(err)
			}
			layers[0].NoteNewVersion(physical.RootPath(), f.fid, l.Replica())
		}
	}
	noteAll := func(layers []*physical.Layer, files []fileRef) {
		for _, f := range files {
			layers[0].NoteNewVersion(physical.RootPath(), f.fid, layers[f.origin].Replica())
		}
	}

	run := func(b *testing.B, cfg recon.PropagateConfig, prePulled bool) {
		c, layers, files := setup(b)
		var rpcs, wireBytes uint64
		var pulled uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rewriteAll(b, layers, files, i)
			if prePulled {
				// Pull everything up front, then re-announce: every entry
				// in the measured pass is already dominated locally.
				if _, err := c.Host(0).PropagateOnce(); err != nil {
					b.Fatal(err)
				}
				noteAll(layers, files)
			}
			before := c.NetworkStats()
			b.StartTimer()
			stats, err := c.Host(0).PropagateOnceCfg(cfg)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			after := c.NetworkStats()
			rpcs += after.RPCs - before.RPCs
			wireBytes += after.RPCBytes - before.RPCBytes
			pulled += uint64(stats.FilesPulled)
			if prePulled {
				if stats.FilesPulled != 0 {
					b.Fatalf("all-dominated pass pulled %d files", stats.FilesPulled)
				}
				if got := after.RPCs - before.RPCs; got > nOrigins {
					b.Fatalf("all-dominated pass cost %d RPCs, want <= 1 per origin (%d)", got, nOrigins)
				}
			} else if stats.FilesPulled != nFiles {
				b.Fatalf("pulled %d files, want %d", stats.FilesPulled, nFiles)
			}
			if n := len(layers[0].PendingVersions()); n != 0 {
				b.Fatalf("%d entries still pending after pass", n)
			}
			b.StartTimer()
		}
		b.StopTimer()
		n := float64(b.N)
		b.ReportMetric(float64(rpcs)/n, "rpcs/pass")
		b.ReportMetric(float64(rpcs)/n/nFiles, "rpcs/file")
		b.ReportMetric(float64(rpcs)/n/nOrigins, "rpcs/origin")
		b.ReportMetric(float64(wireBytes)/n/nFiles, "wireBytes/file")
		b.ReportMetric(float64(pulled)/n, "filesPulled/pass")
	}

	batchCfg := recon.PropagateConfig{Policy: retry.Default()}
	seqCfg := recon.PropagateConfig{Policy: retry.Default(), DisableBatch: true, Workers: 1}
	b.Run("batch/fresh", func(b *testing.B) { run(b, batchCfg, false) })
	b.Run("batch/all-dominated", func(b *testing.B) { run(b, batchCfg, true) })
	b.Run("sequential/fresh", func(b *testing.B) { run(b, seqCfg, false) })
}

// BenchmarkE13DeltaPropagation measures the content-addressed block-delta
// propagation path (wire v3) against whole-file batched pulls on a 4-host
// cluster: 128 files of 16 data blocks each, three origin hosts, host 0
// propagating.
//
//   - delta/append-one-block:  each pass appends one 4 KiB block to every
//     file; only that block should cross the wire.
//   - whole/append-one-block:  the identical workload with DisableDelta —
//     the whole-file baseline the wireBytes/file reduction is quoted
//     against.
//   - delta/touch-metadata:    each pass rewrites every file byte-for-byte
//     (the version bumps, the data does not); every block dedups and the
//     pass ships no block data at all.
//   - delta/all-dominated:     every entry already pulled — the pass must
//     ship zero blocks and zero file bytes.
//
// Reported metrics: wireBytes/file (total RPC bytes over files), blocks
// shipped and reused per pass, and the dedup hit-rate
// reused/(reused+shipped).
func BenchmarkE13DeltaPropagation(b *testing.B) {
	const (
		nFiles     = 128
		nOrigins   = 3
		baseBlocks = 16
		wlSeed     = 1313
		bs         = physical.ChecksumBlockSize
	)

	type fileRef struct {
		name   string
		origin int
		fid    ids.FileID
	}

	setup := func(b *testing.B) (*Cluster, []*physical.Layer, []fileRef) {
		c, err := NewCluster(nOrigins+1, WithSeed(42), WithStorage(65536, 16384))
		if err != nil {
			b.Fatal(err)
		}
		layers := make([]*physical.Layer, nOrigins+1)
		for i := range layers {
			layers[i] = c.Host(i).LocalReplicas()[0]
		}
		files := make([]fileRef, nFiles)
		for i := range files {
			origin := 1 + i%nOrigins
			name := fmt.Sprintf("d%d-f%d", origin, i)
			data := workload.AppendOneBlock(wlSeed, i, baseBlocks, 0, bs)
			fid := benchWrite(b, layers[origin], name, string(data))
			files[i] = fileRef{name: name, origin: origin, fid: fid}
		}
		if err := c.Settle(50); err != nil {
			b.Fatal(err)
		}
		for i := 0; i <= nOrigins; i++ {
			if _, err := c.Host(i).PropagateOnce(); err != nil {
				b.Fatal(err)
			}
		}
		return c, layers, files
	}

	// mutateAll issues version `appends` of every file at its origin and
	// queues the notifications on host 0.  contents decides the workload
	// shape (append-one-block vs byte-identical touch).
	mutateAll := func(b *testing.B, layers []*physical.Layer, files []fileRef,
		contents func(i, appends int) []byte, appends int) {
		for i, f := range files {
			l := layers[f.origin]
			root, err := l.Root()
			if err != nil {
				b.Fatal(err)
			}
			vn, err := root.Lookup(f.name)
			if err != nil {
				b.Fatal(err)
			}
			if err := vnode.WriteFile(vn, contents(i, appends)); err != nil {
				b.Fatal(err)
			}
			layers[0].NoteNewVersion(physical.RootPath(), f.fid, l.Replica())
		}
	}
	noteAll := func(layers []*physical.Layer, files []fileRef) {
		for _, f := range files {
			layers[0].NoteNewVersion(physical.RootPath(), f.fid, layers[f.origin].Replica())
		}
	}
	appendContents := func(i, appends int) []byte {
		return workload.AppendOneBlock(wlSeed, i, baseBlocks, appends, bs)
	}
	touchContents := func(i, _ int) []byte {
		return workload.TouchMetadata(wlSeed, i, baseBlocks, 0, bs)
	}

	run := func(b *testing.B, cfg recon.PropagateConfig, contents func(i, appends int) []byte, dominated bool) {
		c, layers, files := setup(b)
		var rpcs, wireBytes, shipped, reused uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mutateAll(b, layers, files, contents, i+1)
			if dominated {
				if _, err := c.Host(0).PropagateOnceCfg(cfg); err != nil {
					b.Fatal(err)
				}
				noteAll(layers, files)
			}
			before := c.NetworkStats()
			var beforeShipped, beforeReused uint64
			for h := 0; h <= nOrigins; h++ {
				s := c.BlockStatsFor(h)
				beforeShipped += s.BlocksShipped
				beforeReused += s.BlocksReused
			}
			b.StartTimer()
			stats, err := c.Host(0).PropagateOnceCfg(cfg)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			after := c.NetworkStats()
			rpcs += after.RPCs - before.RPCs
			wireBytes += after.RPCBytes - before.RPCBytes
			var afterShipped, afterReused uint64
			for h := 0; h <= nOrigins; h++ {
				s := c.BlockStatsFor(h)
				afterShipped += s.BlocksShipped
				afterReused += s.BlocksReused
			}
			shipped += afterShipped - beforeShipped
			reused += afterReused - beforeReused
			if dominated {
				if stats.FilesPulled != 0 {
					b.Fatalf("all-dominated pass pulled %d files", stats.FilesPulled)
				}
				if afterShipped != beforeShipped {
					b.Fatalf("all-dominated pass shipped %d blocks", afterShipped-beforeShipped)
				}
			} else if stats.FilesPulled != nFiles {
				b.Fatalf("pulled %d files, want %d", stats.FilesPulled, nFiles)
			}
			if n := len(layers[0].PendingVersions()); n != 0 {
				b.Fatalf("%d entries still pending after pass", n)
			}
			b.StartTimer()
		}
		b.StopTimer()
		if probs, err := c.Fsck(); err != nil || len(probs) != 0 {
			b.Fatalf("fsck after bench: %v %v", probs, err)
		}
		n := float64(b.N)
		b.ReportMetric(float64(rpcs)/n, "rpcs/pass")
		b.ReportMetric(float64(wireBytes)/n/nFiles, "wireBytes/file")
		b.ReportMetric(float64(shipped)/n, "blocksShipped/pass")
		b.ReportMetric(float64(reused)/n, "blocksReused/pass")
		if shipped+reused > 0 {
			b.ReportMetric(float64(reused)/float64(shipped+reused), "dedupHitRate")
		}
	}

	deltaCfg := recon.PropagateConfig{Policy: retry.Default()}
	wholeCfg := recon.PropagateConfig{Policy: retry.Default(), DisableDelta: true}
	b.Run("delta/append-one-block", func(b *testing.B) { run(b, deltaCfg, appendContents, false) })
	b.Run("whole/append-one-block", func(b *testing.B) { run(b, wholeCfg, appendContents, false) })
	b.Run("delta/touch-metadata", func(b *testing.B) { run(b, deltaCfg, touchContents, false) })
	b.Run("delta/all-dominated", func(b *testing.B) { run(b, deltaCfg, appendContents, true) })
}

// BenchmarkE14HedgedPulls measures the virtual-tick tail latency of
// propagation pulls over a persistently slow, heavy-tailed link, with and
// without hedging (E14).  Host 0 originates every version; host 2 pulls
// first over fast links and so always holds a fresh copy; host 1's link to
// host 0 is slow with occasional large spikes.  With hedging enabled a
// backup pull to host 2 is issued once the primary passes the threshold,
// and the first virtual response wins — cutting the p99 pull ticks from
// spike-sized to roughly HedgeAfter plus a fast round trip.  All latency is
// virtual, so the percentiles are exact and deterministic per seed; ns/op
// is incidental.
func BenchmarkE14HedgedPulls(b *testing.B) {
	const rounds = 128
	const hedgeAfter = 30
	run := func(b *testing.B, hedge uint64) {
		c, err := NewCluster(3, WithSeed(11))
		if err != nil {
			b.Fatal(err)
		}
		c.InjectLatency(LatencyConfig{BaseTicks: 4, JitterTicks: 2})
		c.InjectLinkLatency(1, 0, LatencyConfig{BaseTicks: 40, JitterTicks: 10, SpikeRate: 0.25, SpikeTicks: 400})
		m0, err := c.Mount(0)
		if err != nil {
			b.Fatal(err)
		}
		var samples []uint64
		cfg := recon.PropagateConfig{
			Policy:      retry.Default(),
			HedgeAfter:  hedge,
			OnPullTicks: func(t uint64) { samples = append(samples, t) },
		}
		var total recon.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				path := fmt.Sprintf("/e14-%d-%d", i, r)
				if err := m0.WriteFile(path, []byte(fmt.Sprintf("tail %d.%d", i, r))); err != nil {
					b.Fatal(err)
				}
				// Host 2 pulls first over fast links: it is the up-to-date
				// alternate source the hedge can win from.
				if _, err := c.Host(2).PropagateOnce(); err != nil {
					b.Fatal(err)
				}
				stats, err := c.Host(1).PropagateOnceCfg(cfg)
				if err != nil {
					b.Fatal(err)
				}
				total.Add(stats)
			}
		}
		b.StopTimer()
		if n := len(c.PendingVersionsFor(1)); n != 0 {
			b.Fatalf("%d entries still pending on host 1", n)
		}
		if probs, err := c.Fsck(); err != nil || len(probs) != 0 {
			b.Fatalf("fsck after bench: %v %v", probs, err)
		}
		sorted := append([]uint64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pct := func(p float64) float64 {
			if len(sorted) == 0 {
				return 0
			}
			return float64(sorted[int(p*float64(len(sorted)-1))])
		}
		n := float64(b.N) * rounds
		b.ReportMetric(pct(0.50), "p50PullTicks")
		b.ReportMetric(pct(0.99), "p99PullTicks")
		b.ReportMetric(float64(total.Hedges)/n, "hedges/pull")
		b.ReportMetric(float64(total.HedgeWins)/n, "hedgeWins/pull")
	}
	b.Run("hedged", func(b *testing.B) { run(b, hedgeAfter) })
	b.Run("unhedged", func(b *testing.B) { run(b, 0) })
}

// BenchmarkE15GossipScale measures what the epidemic notification plane
// costs the origin as the cluster grows (E15).  For each cluster size the
// same 4-update workload runs once with flat multicast (the paper's §2.5
// one-datagram-per-replica) and once with gossip (fanout 3, TTL 6): the
// flat origin pays n-1 notices per update, the gossip origin a constant
// fanout, with the remaining coverage financed by relayers — O(k) at the
// origin, O(n·k) spread across the cluster.  Convergence is then driven by
// propagation plus budget-4 anti-entropy passes, and the passes-to-identical
// count is reported; it must grow no worse than linearly in n.  All counting
// metrics are deterministic per seed; ns/op is incidental.
func BenchmarkE15GossipScale(b *testing.B) {
	const updates = 4
	run := func(b *testing.B, n int, cfg GossipConfig) {
		for i := 0; i < b.N; i++ {
			c, err := NewCluster(n, WithSeed(15), WithPolicy(FirstAvailable),
				WithStorage(4096, 512))
			if err != nil {
				b.Fatal(err)
			}
			c.ConfigureGossip(cfg)
			// The writer mounts mid-cluster; FirstAvailable routes its writes
			// to the first replica, whose host originates every rumor.
			m, err := c.Mount(n / 2)
			if err != nil {
				b.Fatal(err)
			}
			for u := 0; u < updates; u++ {
				if err := m.WriteFile(fmt.Sprintf("/e15-%d", u), []byte(fmt.Sprintf("u%d", u))); err != nil {
					b.Fatal(err)
				}
			}
			rootVol := c.RootVolume()
			treesEqual := func() bool {
				ref := replicaTreeOf(b, c, 0, rootVol, false)
				for h := 1; h < n; h++ {
					if replicaTreeOf(b, c, h, rootVol, false) != ref {
						return false
					}
				}
				return true
			}
			passes := 0
			for ; passes < 64; passes++ {
				if treesEqual() {
					break
				}
				if _, err := c.Propagate(); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Reconcile(); err != nil {
					b.Fatal(err)
				}
			}
			if passes >= 64 {
				b.Fatalf("n=%d not converged after 64 passes", n)
			}
			var origin GossipStats
			var originated uint64
			for h := 0; h < n; h++ {
				gs := c.GossipStatsFor(h)
				originated += gs.RumorsOriginated
				if gs.RumorsOriginated > origin.RumorsOriginated {
					origin = gs
				}
			}
			ns := c.NetworkStats()
			if cfg.Fanout > 0 {
				if originated == 0 {
					b.Fatal("gossip run originated no rumors")
				}
				b.ReportMetric(float64(origin.NoticesSent)/float64(updates), "originDatagrams/update")
				b.ReportMetric(float64(origin.NoticesSent)/float64(origin.RumorsOriginated), "notices/rumor")
			} else {
				// Flat multicast: every notify datagram in the run was sent
				// by the origin — one per peer replica host per rumor.
				b.ReportMetric(float64(ns.Datagrams)/float64(updates), "originDatagrams/update")
				b.ReportMetric(float64(n-1), "notices/rumor")
			}
			b.ReportMetric(float64(ns.Datagrams)/float64(updates), "totalDatagrams/update")
			b.ReportMetric(float64(passes), "passesToConverge")
		}
	}
	for _, n := range []int{8, 32, 128, 256} {
		cfgGossip := GossipConfig{Fanout: 3, TTL: 6, ReconPeers: 4}
		b.Run(fmt.Sprintf("gossip/n=%d", n), func(b *testing.B) { run(b, n, cfgGossip) })
		b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) { run(b, n, GossipConfig{}) })
	}
}
