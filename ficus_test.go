package ficus

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func newTestCluster(t *testing.T, n int, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := newTestCluster(t, 3)
	m0, err := c.Mount(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m0.MkdirAll("/projects/ficus"); err != nil {
		t.Fatal(err)
	}
	if err := m0.WriteFile("/projects/ficus/README", []byte("optimistic replication")); err != nil {
		t.Fatal(err)
	}
	// Another host reads it immediately (most-recent selection reads
	// through to the replica holding the update).
	m2, err := c.Mount(2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m2.ReadFile("/projects/ficus/README")
	if err != nil || string(data) != "optimistic replication" {
		t.Fatalf("%q %v", data, err)
	}
	// Propagation makes every replica self-sufficient.
	if _, err := c.Propagate(); err != nil {
		t.Fatal(err)
	}
	st, err := m2.Stat("/projects/ficus/README")
	if err != nil || st.IsDir || st.Size != 22 {
		t.Fatalf("%+v %v", st, err)
	}
}

func TestPartitionConflictResolveCycle(t *testing.T) {
	c := newTestCluster(t, 2)
	m0, _ := c.Mount(0)
	m1, _ := c.Mount(1)
	if err := m0.WriteFile("/doc", []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	c.Partition([]int{0}, []int{1})
	if err := m0.WriteFile("/doc", []byte("from host 0")); err != nil {
		t.Fatalf("one-copy availability violated: %v", err)
	}
	if err := m1.WriteFile("/doc", []byte("from host 1")); err != nil {
		t.Fatalf("one-copy availability violated: %v", err)
	}
	c.Heal()
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	confs := c.Conflicts()
	if len(confs) == 0 {
		t.Fatal("conflict not reported")
	}
	if confs[0].FileID == "" || confs[0].LocalVV == "" {
		t.Fatalf("conflict lacks detail: %+v", confs[0])
	}
	if err := c.Resolve(confs[0], []byte("owner merged")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, _ := c.Mount(i)
		data, err := m.ReadFile("/doc")
		if err != nil || string(data) != "owner merged" {
			t.Fatalf("host %d: %q %v", i, data, err)
		}
	}
	if n := len(c.Conflicts()); n != 0 {
		t.Fatalf("%d conflicts after resolve", n)
	}
}

func TestResolveRequiresRealConflict(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Resolve(Conflict{}, nil); err == nil {
		t.Fatal("resolved a zero conflict")
	}
}

func TestDirectoryConflictAutoRepairEndToEnd(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Settle(5); err != nil {
		t.Fatal(err)
	}
	c.Partition([]int{0}, []int{1})
	m0, _ := c.Mount(0)
	m1, _ := c.Mount(1)
	if err := m0.WriteFile("/report", []byte("host0 version")); err != nil {
		t.Fatal(err)
	}
	if err := m1.WriteFile("/report", []byte("host1 version")); err != nil {
		t.Fatal(err)
	}
	c.Heal()
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	ents, err := m0.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("entries %v", ents)
	}
	// No file conflict: these are distinct files under repaired names.
	if n := len(c.Conflicts()); n != 0 {
		t.Fatalf("%d conflicts", n)
	}
}

func TestFileCursorSemantics(t *testing.T) {
	c := newTestCluster(t, 1)
	m, _ := c.Mount(0)
	f, err := m.Open("/f", ReadWrite|Create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("%q %v", got, err)
	}
	if pos, err := f.Seek(-5, io.SeekEnd); err != nil || pos != 6 {
		t.Fatalf("seek end: %d %v", pos, err)
	}
	tail := make([]byte, 5)
	if _, err := io.ReadFull(f, tail); err != nil || string(tail) != "world" {
		t.Fatalf("%q %v", tail, err)
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if _, err := f.Read(tail); err == nil {
		t.Fatal("read after close accepted")
	}
	if _, err := f.Write(tail); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestOpenTruncateAndReadAtWriteAt(t *testing.T) {
	c := newTestCluster(t, 1)
	m, _ := c.Mount(0)
	if err := m.WriteFile("/f", []byte("old contents")); err != nil {
		t.Fatal(err)
	}
	f, err := m.Open("/f", ReadWrite|Truncate)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("xy"), 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 0, 0, 'x', 'y'}) {
		t.Fatalf("%v", got)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Stat("/f")
	if st.Size != 3 {
		t.Fatalf("size %d", st.Size)
	}
	if _, err := m.Open("/missing", ReadOnly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestRenameRemoveReadDir(t *testing.T) {
	c := newTestCluster(t, 2)
	m, _ := c.Mount(0)
	m.MkdirAll("/a/b")
	m.WriteFile("/a/b/one", []byte("1"))
	m.WriteFile("/a/b/two", []byte("2"))
	if err := m.Rename("/a/b/one", "/a/uno"); err != nil {
		t.Fatal(err)
	}
	ents, _ := m.ReadDir("/a")
	if len(ents) != 2 || ents[0].Name != "b" || ents[1].Name != "uno" {
		t.Fatalf("%v", ents)
	}
	if err := m.Remove("/a/b/two"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rmdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat removed dir: %v", err)
	}
}

func TestSymlinkAndLink(t *testing.T) {
	c := newTestCluster(t, 1)
	m, _ := c.Mount(0)
	m.WriteFile("/data", []byte("x"))
	if err := m.Symlink("/data", "/ln"); err != nil {
		t.Fatal(err)
	}
	got, err := m.Readlink("/ln")
	if err != nil || got != "/data" {
		t.Fatalf("%q %v", got, err)
	}
	if err := m.Link("/data", "/alias"); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile("/alias")
	if err != nil || string(data) != "x" {
		t.Fatalf("%q %v", data, err)
	}
}

func TestVolumesAndGrafting(t *testing.T) {
	c := newTestCluster(t, 3)
	proj, err := c.NewVolume(2)
	if err != nil {
		t.Fatal(err)
	}
	if proj.String() == "" || proj == c.RootVolume() {
		t.Fatal("volume identity")
	}
	pm, err := c.MountVolume(2, proj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteFile("/notes", []byte("volume data")); err != nil {
		t.Fatal(err)
	}
	// Replicate the project volume onto host 1 as well.
	if err := c.ReplicateVolume(proj, 1); err != nil {
		t.Fatal(err)
	}
	// Graft it into the root namespace, created at host 0.
	if err := c.Graft(0, "/", "proj", proj); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	// Every host can now walk into the project volume transparently.
	for i := 0; i < 3; i++ {
		m, err := c.Mount(i)
		if err != nil {
			t.Fatal(err)
		}
		data, err := m.ReadFile("/proj/notes")
		if err != nil || string(data) != "volume data" {
			t.Fatalf("host %d: %q %v", i, data, err)
		}
	}
	// Pruning and regrafting.
	c.Tick()
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if n := c.PruneGrafts(5); n == 0 {
		t.Fatal("nothing pruned")
	}
	m0, _ := c.Mount(0)
	if _, err := m0.ReadFile("/proj/notes"); err != nil {
		t.Fatalf("regraft failed: %v", err)
	}
}

func TestGraftUnknownVolumeErrors(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Graft(0, "/", "x", Volume{}); err == nil {
		t.Fatal("grafted unknown volume")
	}
	if err := c.ReplicateVolume(Volume{}, 0); err == nil {
		t.Fatal("replicated unknown volume")
	}
}

func TestHostDownFailover(t *testing.T) {
	c := newTestCluster(t, 3, WithPolicy(FirstAvailable))
	m0, _ := c.Mount(0)
	if err := m0.WriteFile("/f", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	// Crash host 0's... rather read from host 1 with host 2 down.
	c.SetHostDown(2, true)
	m1, _ := c.Mount(1)
	data, err := m1.ReadFile("/f")
	if err != nil || string(data) != "v" {
		t.Fatalf("%q %v", data, err)
	}
	c.SetHostDown(2, false)
}

func TestMaxNameConstant(t *testing.T) {
	if MaxName < 190 || MaxName > 230 {
		t.Fatalf("MaxName = %d, want about 200 (paper §2.3 fn2)", MaxName)
	}
	c := newTestCluster(t, 1)
	m, _ := c.Mount(0)
	long := make([]byte, MaxName+1)
	for i := range long {
		long[i] = 'a'
	}
	if err := m.WriteFile("/"+string(long), nil); err == nil {
		t.Fatal("over-long name accepted")
	}
	if err := m.WriteFile("/"+string(long[:MaxName]), nil); err != nil {
		t.Fatalf("max-len name rejected: %v", err)
	}
}

func TestClusterOptions(t *testing.T) {
	c := newTestCluster(t, 2, WithSeed(7), WithPolicy(FirstAvailable), WithStorage(8192, 1024))
	if c.NumHosts() != 2 {
		t.Fatal("NumHosts")
	}
	if c.Host(0) == nil {
		t.Fatal("Host accessor")
	}
	m, err := c.Mount(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/x", []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestStatRoot(t *testing.T) {
	c := newTestCluster(t, 1)
	m, _ := c.Mount(0)
	st, err := m.Stat("/")
	if err != nil || !st.IsDir || st.Name != "/" {
		t.Fatalf("%+v %v", st, err)
	}
}
